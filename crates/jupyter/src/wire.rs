//! ZMQ-style wire framing for Jupyter messages.
//!
//! The Jupyter wire protocol sends each message as a multipart frame list:
//! `[<IDS|MSG>, signature, header, parent_header, metadata, content]`.
//! This module implements that framing over [`bytes::Bytes`] with a keyed
//! integrity signature.
//!
//! The signature is a keyed FNV-1a construction — **not** cryptographic
//! (real Jupyter uses HMAC-SHA256; no crypto crate is available offline).
//! It serves the same structural role: catching corruption and key
//! mismatches in tests.

use bytes::Bytes;

use crate::json::Json;
use crate::message::{Header, JupyterMessage};

/// The frame delimiter between routing identities and the message body.
pub const DELIMITER: &[u8] = b"<IDS|MSG>";

/// Errors decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer frames than the protocol requires.
    TooFewFrames,
    /// The `<IDS|MSG>` delimiter was not found.
    MissingDelimiter,
    /// The signature does not match the body.
    BadSignature,
    /// A JSON part failed to parse.
    BadJson(String),
    /// The header was structurally invalid.
    BadHeader(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooFewFrames => write!(f, "too few frames"),
            WireError::MissingDelimiter => write!(f, "missing <IDS|MSG> delimiter"),
            WireError::BadSignature => write!(f, "signature mismatch"),
            WireError::BadJson(e) => write!(f, "invalid json part: {e}"),
            WireError::BadHeader(e) => write!(f, "invalid header: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Computes the keyed signature over the four JSON body parts.
fn sign(key: &[u8], parts: &[&[u8]]) -> String {
    // Keyed FNV-1a, 128 bits via two offsets. Documented as
    // non-cryptographic in the module docs.
    let mut lanes = [0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64];
    for (lane_idx, lane) in lanes.iter_mut().enumerate() {
        for chunk in [key, &[lane_idx as u8][..]]
            .into_iter()
            .chain(parts.iter().copied())
        {
            for &b in chunk {
                *lane ^= b as u64;
                *lane = lane.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    format!("{:016x}{:016x}", lanes[0], lanes[1])
}

/// Encodes a message (plus routing identities) into wire frames.
pub fn encode(identities: &[Bytes], message: &JupyterMessage, key: &[u8]) -> Vec<Bytes> {
    let header = message.header.to_json().encode();
    let parent = message
        .parent
        .as_ref()
        .map(|p| p.to_json().encode())
        .unwrap_or_else(|| "{}".to_string());
    let metadata = message.metadata.encode();
    let content = message.content.encode();
    let signature = sign(
        key,
        &[
            header.as_bytes(),
            parent.as_bytes(),
            metadata.as_bytes(),
            content.as_bytes(),
        ],
    );

    let mut frames = Vec::with_capacity(identities.len() + 6);
    frames.extend(identities.iter().cloned());
    frames.push(Bytes::from_static(DELIMITER));
    frames.push(Bytes::from(signature));
    frames.push(Bytes::from(header));
    frames.push(Bytes::from(parent));
    frames.push(Bytes::from(metadata));
    frames.push(Bytes::from(content));
    frames
}

/// Decodes wire frames back into identities and a message, verifying the
/// signature.
///
/// # Errors
///
/// Returns a [`WireError`] when the framing, signature, or JSON parts are
/// invalid.
pub fn decode(frames: &[Bytes], key: &[u8]) -> Result<(Vec<Bytes>, JupyterMessage), WireError> {
    let delim = frames
        .iter()
        .position(|f| f.as_ref() == DELIMITER)
        .ok_or(WireError::MissingDelimiter)?;
    if frames.len() < delim + 6 {
        return Err(WireError::TooFewFrames);
    }
    let identities = frames[..delim].to_vec();
    let signature = &frames[delim + 1];
    let body: Vec<&[u8]> = frames[delim + 2..delim + 6]
        .iter()
        .map(|b| b.as_ref())
        .collect();
    let expected = sign(key, &body);
    if signature.as_ref() != expected.as_bytes() {
        return Err(WireError::BadSignature);
    }
    let parse = |bytes: &[u8]| -> Result<Json, WireError> {
        let text = std::str::from_utf8(bytes).map_err(|e| WireError::BadJson(e.to_string()))?;
        Json::parse(text).map_err(|e| WireError::BadJson(e.to_string()))
    };
    let header_json = parse(body[0])?;
    let parent_json = parse(body[1])?;
    let metadata = parse(body[2])?;
    let content = parse(body[3])?;
    let header = Header::from_json(&header_json).map_err(WireError::BadHeader)?;
    let parent = match &parent_json {
        Json::Obj(map) if map.is_empty() => None,
        other => Some(Header::from_json(other).map_err(WireError::BadHeader)?),
    };
    Ok((
        identities,
        JupyterMessage {
            header,
            parent,
            metadata,
            content,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{JupyterMessage, MsgType, ReplyStatus};

    const KEY: &[u8] = b"test-key";

    fn sample() -> JupyterMessage {
        JupyterMessage::execute_request("m1", "s1", "print(1)", 99)
            .with_destination("kern-1")
            .with_gpu_device_ids(&[0, 1])
    }

    #[test]
    fn round_trip_without_identities() {
        let m = sample();
        let frames = encode(&[], &m, KEY);
        let (ids, decoded) = decode(&frames, KEY).unwrap();
        assert!(ids.is_empty());
        assert_eq!(decoded, m);
    }

    #[test]
    fn round_trip_with_identities_and_parent() {
        let req = sample();
        let reply = req.execute_reply("m2", ReplyStatus::Ok, 1, true, 150);
        let idents = vec![Bytes::from_static(b"client-7")];
        let frames = encode(&idents, &reply, KEY);
        let (ids, decoded) = decode(&frames, KEY).unwrap();
        assert_eq!(ids, idents);
        assert_eq!(decoded.header.msg_type, MsgType::ExecuteReply);
        assert_eq!(decoded.parent.as_ref().unwrap().msg_id, "m1");
    }

    #[test]
    fn wrong_key_is_rejected() {
        let frames = encode(&[], &sample(), KEY);
        assert_eq!(
            decode(&frames, b"other-key").unwrap_err(),
            WireError::BadSignature
        );
    }

    #[test]
    fn tampered_content_is_rejected() {
        let mut frames = encode(&[], &sample(), KEY);
        let last = frames.len() - 1;
        frames[last] = Bytes::from_static(b"{\"code\":\"rm -rf /\"}");
        assert_eq!(decode(&frames, KEY).unwrap_err(), WireError::BadSignature);
    }

    #[test]
    fn missing_delimiter_is_rejected() {
        let mut frames = encode(&[], &sample(), KEY);
        frames.remove(0);
        assert_eq!(
            decode(&frames, KEY).unwrap_err(),
            WireError::MissingDelimiter
        );
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frames = encode(&[], &sample(), KEY);
        assert_eq!(
            decode(&frames[..frames.len() - 1], KEY).unwrap_err(),
            WireError::TooFewFrames
        );
    }

    #[test]
    fn signature_is_order_sensitive() {
        let a = sign(KEY, &[b"ab", b"c"]);
        let b = sign(KEY, &[b"a", b"bc"]);
        // Keyed over distinct chunk boundaries must still differ because of
        // content; equal concatenations are acceptable for FNV, but the key
        // lane separation keeps distinct keys distinct.
        assert_eq!(a.len(), 32);
        assert_eq!(b.len(), 32);
        assert_ne!(sign(b"k1", &[b"x"]), sign(b"k2", &[b"x"]));
    }
}
