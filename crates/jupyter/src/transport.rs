//! A real transport loop for wire frames: in-process duplex endpoints
//! carrying the ZMQ-style multipart framing of [`crate::wire`].
//!
//! The live service mode needs actual bytes on an actual channel — every
//! message serialized to signed frames on send and parsed + verified on
//! receive — without depending on a network stack the offline build
//! doesn't have. [`wire_pair`] returns two connected [`WireEndpoint`]s
//! over `std::sync::mpsc`: the client end belongs to the load generator,
//! the server end to the gateway, and everything crossing between them
//! goes through [`crate::wire::encode`]/[`crate::wire::decode`] exactly
//! as it would on a socket. A TCP or ZMQ transport can replace the
//! channel later without touching the framing.

use std::sync::mpsc::{channel, Receiver, Sender};

use bytes::Bytes;

use crate::message::JupyterMessage;
use crate::wire::{self, WireError};

/// One end of a duplex wire-frame channel. Owns the signing key, so a
/// message is signed on send and its signature verified on receive.
#[derive(Debug)]
pub struct WireEndpoint {
    tx: Sender<Vec<Bytes>>,
    rx: Receiver<Vec<Bytes>>,
    key: Vec<u8>,
    sent: u64,
    received: u64,
}

/// Creates a connected pair of endpoints sharing `key`.
pub fn wire_pair(key: &[u8]) -> (WireEndpoint, WireEndpoint) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    let endpoint = |tx, rx| WireEndpoint {
        tx,
        rx,
        key: key.to_vec(),
        sent: 0,
        received: 0,
    };
    (endpoint(a_tx, a_rx), endpoint(b_tx, b_rx))
}

impl WireEndpoint {
    /// Encodes, signs, and sends `message` with the given routing
    /// identities. Returns `false` when the peer endpoint is gone.
    pub fn send(&mut self, identities: &[Bytes], message: &JupyterMessage) -> bool {
        let frames = wire::encode(identities, message, &self.key);
        let delivered = self.tx.send(frames).is_ok();
        if delivered {
            self.sent += 1;
        }
        delivered
    }

    /// Receives one pending message, decoding and signature-checking its
    /// frames. `None` when nothing is pending (or the peer is gone);
    /// `Some(Err(_))` for frames that fail framing or signature checks.
    pub fn try_recv(&mut self) -> Option<Result<(Vec<Bytes>, JupyterMessage), WireError>> {
        let frames = self.rx.try_recv().ok()?;
        let decoded = wire::decode(&frames, &self.key);
        if decoded.is_ok() {
            self.received += 1;
        }
        Some(decoded)
    }

    /// Receives every currently pending message that decodes cleanly,
    /// dropping (but counting via the return's second element) any that
    /// fail verification.
    pub fn drain(&mut self) -> (Vec<(Vec<Bytes>, JupyterMessage)>, usize) {
        let mut out = Vec::new();
        let mut rejected = 0;
        while let Some(result) = self.try_recv() {
            match result {
                Ok(pair) => out.push(pair),
                Err(_) => rejected += 1,
            }
        }
        (out, rejected)
    }

    /// Messages successfully sent from this end.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages successfully received and verified on this end.
    pub fn received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ReplyStatus;

    const KEY: &[u8] = b"transport-key";

    fn request(id: &str) -> JupyterMessage {
        JupyterMessage::execute_request(id, "sess", "train()", 7).with_destination("kernel-1")
    }

    #[test]
    fn round_trip_preserves_message_and_identities() {
        let (mut client, mut server) = wire_pair(KEY);
        let idents = vec![Bytes::from_static(b"client-1")];
        assert!(client.send(&idents, &request("m1")));
        let (ids, msg) = server.try_recv().expect("pending").expect("verifies");
        assert_eq!(ids, idents);
        assert_eq!(msg.code(), Some("train()"));
        assert_eq!(msg.destination(), Some("kernel-1"));
        assert_eq!(client.sent(), 1);
        assert_eq!(server.received(), 1);
    }

    #[test]
    fn duplex_reply_flows_back() {
        let (mut client, mut server) = wire_pair(KEY);
        client.send(&[], &request("m1"));
        let (_, req) = server.try_recv().unwrap().unwrap();
        let reply = req.execute_reply("r1", ReplyStatus::Ok, 1, true, 9);
        assert!(server.send(&[], &reply));
        let (_, got) = client.try_recv().unwrap().unwrap();
        assert!(got.is_ok_reply());
        assert_eq!(got.parent.as_ref().unwrap().msg_id, "m1");
    }

    #[test]
    fn messages_arrive_in_send_order() {
        let (mut client, mut server) = wire_pair(KEY);
        for i in 0..10 {
            client.send(&[], &request(&format!("m{i}")));
        }
        let (msgs, rejected) = server.drain();
        assert_eq!(rejected, 0);
        let ids: Vec<&str> = msgs.iter().map(|(_, m)| m.header.msg_id.as_str()).collect();
        assert_eq!(
            ids,
            (0..10).map(|i| format!("m{i}")).collect::<Vec<_>>(),
            "FIFO order"
        );
    }

    #[test]
    fn key_mismatch_is_rejected_on_receive() {
        let (mut client, mut server) = wire_pair(KEY);
        client.key = b"other-key".to_vec();
        assert!(client.send(&[], &request("m1")));
        let got = server.try_recv().expect("frames pending");
        assert_eq!(got.unwrap_err(), WireError::BadSignature);
        assert_eq!(server.received(), 0, "rejected frames are not counted");
    }

    #[test]
    fn recv_on_empty_or_disconnected_channel_is_none() {
        let (mut client, server) = wire_pair(KEY);
        assert!(client.try_recv().is_none(), "empty");
        drop(server);
        assert!(!client.send(&[], &request("m1")), "peer gone");
        assert!(client.try_recv().is_none(), "disconnected");
    }
}
