//! The pending-event queue.
//!
//! [`EventQueue`] is the ordering backbone for both execution modes: the
//! [`Simulation`](crate::sim::Simulation) driver and the
//! [`DesScheduler`](crate::scheduler::DesScheduler) /
//! [`RealTimeScheduler`](crate::scheduler::RealTimeScheduler) pair all pop
//! from it, so `(time, seq)` tie-breaking — and therefore determinism — is
//! identical no matter which front end drives the events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: the queue orders by `(time, seq)` so that events
/// scheduled at the same instant fire in the order they were scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of future events, ordered by firing time with FIFO
/// tie-breaking.
///
/// # Example
///
/// ```
/// use notebookos_des::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_secs(2), "b");
/// queue.schedule(SimTime::from_secs(1), "a");
/// let (t, e) = queue.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "a"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.schedule(now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Returns the firing time of the earliest pending event without
    /// removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events scheduled over the queue's lifetime (a cheap proxy
    /// for "how much simulated work happened").
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_secs(5), SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn counters_track_usage() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
