//! The simulation driver: pops events and dispatches them to a [`World`].
//!
//! This is the closed-loop driver: it owns the queue and runs the world to
//! completion in virtual time. Code that needs to own the loop itself — or
//! swap virtual time for the wall clock — should drive a
//! [`Scheduler`](crate::scheduler::Scheduler) instead; the two share the
//! same [`EventQueue`] ordering guarantees.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulated system: owns all state and reacts to events.
///
/// Implementations receive the current virtual time, the event, and the
/// queue (so a handler can schedule follow-up events). The driver guarantees
/// that `handle` is called in non-decreasing time order.
pub trait World {
    /// The event alphabet of this world.
    type Event: Eq;

    /// Reacts to `event` firing at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives a [`World`] until the event queue drains (or a horizon/step budget
/// is hit).
///
/// # Example
///
/// See the crate-level documentation for a complete runnable example.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    steps: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation around `world` with an empty queue at time zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
        }
    }

    /// Current virtual time (the firing time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Exclusive access to the event queue (for seeding initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Dispatches a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "event queue went backwards in time");
                self.now = time;
                self.steps += 1;
                self.world.handle(time, event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains. Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the queue drains or the next event would fire strictly
    /// after `horizon`. Events at exactly `horizon` are dispatched.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(next) = self.queue.peek_time() {
            if next > horizon {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Runs at most `budget` additional events; returns how many fired.
    pub fn run_steps(&mut self, budget: u64) -> u64 {
        let mut fired = 0;
        while fired < budget && self.step() {
            fired += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that re-schedules itself `remaining` times at 1 s spacing.
    struct Relay {
        remaining: u32,
        log: Vec<SimTime>,
    }

    impl World for Relay {
        type Event = ();

        fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
            self.log.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule_in(now, SimTime::from_secs(1), ());
            }
        }
    }

    fn relay(n: u32) -> Simulation<Relay> {
        let mut sim = Simulation::new(Relay {
            remaining: n,
            log: Vec::new(),
        });
        sim.queue_mut().schedule(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn run_drains_queue() {
        let mut sim = relay(4);
        let end = sim.run();
        assert_eq!(end, SimTime::from_secs(4));
        assert_eq!(sim.steps(), 5);
        assert_eq!(sim.world().log.len(), 5);
    }

    #[test]
    fn run_until_respects_horizon_inclusively() {
        let mut sim = relay(10);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.world().log.len(), 4);
        // Remaining events still pending.
        assert!(!sim.queue_mut().is_empty());
    }

    #[test]
    fn run_steps_respects_budget() {
        let mut sim = relay(10);
        assert_eq!(sim.run_steps(3), 3);
        assert_eq!(sim.steps(), 3);
        assert_eq!(sim.run_steps(100), 8);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut sim = Simulation::new(Relay {
            remaining: 0,
            log: Vec::new(),
        });
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}
