//! The clock abstraction separating *what* the platform does from *when*
//! it runs: one object-safe [`Scheduler`] trait with a discrete-event
//! implementation ([`DesScheduler`], bit-identical to driving the
//! [`EventQueue`] directly) and a wall-clock
//! implementation ([`RealTimeScheduler`]) that sleeps until each deadline
//! on a monotonic clock.
//!
//! Event-handling code written against `&mut dyn Scheduler<E>` runs
//! unchanged in both modes: simulated studies pop events instantly in
//! virtual time, while a live service dispatches the same events at their
//! wall-clock deadlines. Time only ever advances to the deadline of a
//! dispatched event, so handler-visible timestamps are identical across
//! the two implementations given the same schedule.
//!
//! # Example
//!
//! ```
//! use notebookos_des::{DesScheduler, Scheduler, SimTime};
//!
//! let mut sched = DesScheduler::new();
//! sched.schedule(SimTime::from_secs(2), "b");
//! sched.schedule(SimTime::from_secs(1), "a");
//! assert_eq!(sched.pop_next(), Some((SimTime::from_secs(1), "a")));
//! assert_eq!(sched.now(), SimTime::from_secs(1));
//! ```

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A deadline-ordered event dispatcher: the minimal interface event
/// handlers need, independent of whether time is simulated or real.
///
/// The trait is object-safe (`&mut dyn Scheduler<E>`), so one handler
/// body serves both the DES studies and the live service. Implementations
/// must dispatch events in `(deadline, schedule order)` order and advance
/// [`Scheduler::now`] to each dispatched event's deadline.
pub trait Scheduler<E> {
    /// The current logical time: the deadline of the most recently popped
    /// event ([`SimTime::ZERO`] before the first pop).
    fn now(&self) -> SimTime;

    /// Schedules `event` to fire at absolute time `at`.
    fn schedule(&mut self, at: SimTime, event: E);

    /// Schedules `event` to fire `delay` after [`Scheduler::now`]
    /// (saturating). Anchoring at the logical now — not the wall clock —
    /// keeps periodic ticks drift-free under real time.
    fn schedule_in(&mut self, delay: SimTime, event: E);

    /// Removes and returns the earliest pending event, advancing
    /// [`Scheduler::now`] to its deadline. A real-time implementation
    /// blocks until the deadline has passed on the wall clock.
    fn pop_next(&mut self) -> Option<(SimTime, E)>;

    /// The earliest pending deadline, without popping or waiting.
    fn peek_deadline(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn pending(&self) -> usize;

    /// Events scheduled over the scheduler's lifetime (a cheap proxy for
    /// "how much work happened").
    fn scheduled_total(&self) -> u64;

    /// Pops the next event only if its deadline is at or before
    /// `horizon`; events scheduled exactly at the horizon are dispatched.
    /// Returns `None` — without waiting — once the next deadline lies
    /// strictly beyond it, or the queue is empty.
    fn pop_next_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_deadline() {
            Some(deadline) if deadline <= horizon => self.pop_next(),
            _ => None,
        }
    }
}

/// Discrete-event [`Scheduler`]: wraps an [`EventQueue`] and jumps the
/// clock to each deadline instantly.
///
/// Behaviour is bit-identical to the pre-trait engine: the same
/// `(time, seq)` FIFO ordering, the same saturating relative scheduling,
/// and a `now` that only advances on dispatch — the golden determinism
/// tests pin this equivalence end to end.
#[derive(Debug)]
pub struct DesScheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E: Eq> DesScheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        DesScheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }
}

impl<E: Eq> Default for DesScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> Scheduler<E> for DesScheduler<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.schedule_in(self.now, delay, event);
    }

    fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue went backwards in time");
        self.now = time;
        Some((time, event))
    }

    fn peek_deadline(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }
}

/// A monotonic time source a [`RealTimeScheduler`] waits on.
///
/// The production implementation is [`MonotonicClock`];
/// [`ManualClock`] substitutes a hand-advanced clock so real-time
/// scheduling logic is testable without wall-clock sleeps.
pub trait Clock: Send + std::fmt::Debug {
    /// Time elapsed since the clock was created.
    fn now(&self) -> SimTime;

    /// Blocks for (up to) `duration`. Implementations may oversleep; the
    /// scheduler re-checks [`Clock::now`] after every sleep.
    fn sleep(&mut self, duration: SimTime);
}

/// The production [`Clock`]: `std::time::Instant` + `std::thread::sleep`.
#[derive(Debug)]
pub struct MonotonicClock {
    start: std::time::Instant,
}

impl MonotonicClock {
    /// Starts a clock at the current instant.
    pub fn new() -> Self {
        MonotonicClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }

    fn sleep(&mut self, duration: SimTime) {
        std::thread::sleep(std::time::Duration::from_micros(duration.as_micros()));
    }
}

/// A hand-advanced [`Clock`] for tests: `sleep` advances `now` by exactly
/// the requested duration and returns immediately, so a
/// [`RealTimeScheduler`] under test runs its full wait loop with zero
/// wall-clock delay.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: SimTime,
    sleeps: u64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Number of `sleep` calls observed (each bounded by the scheduler's
    /// tick, so this counts wait-loop iterations).
    pub fn sleeps(&self) -> u64 {
        self.sleeps
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        self.now
    }

    fn sleep(&mut self, duration: SimTime) {
        self.sleeps += 1;
        self.now = self.now.saturating_add(duration);
    }
}

/// Wall-clock [`Scheduler`]: holds the same deterministic
/// [`EventQueue`] ordering as [`DesScheduler`] but blocks until each
/// event's deadline has passed on a monotonic clock before dispatching.
///
/// The wait is a bounded-drift tick loop: each sleep is capped at
/// [`RealTimeScheduler::with_max_tick`]'s tick and the clock is re-read
/// after every sleep, so an oversleeping OS timer can push a dispatch
/// late by at most one tick's oversleep rather than accumulating across
/// the wait. Logical time ([`Scheduler::now`]) is pinned to event
/// deadlines — not the wall reading — so `schedule_in` chains (periodic
/// ticks) stay anchored to their nominal schedule and lateness never
/// compounds. The worst observed lateness is reported by
/// [`RealTimeScheduler::max_lateness`].
#[derive(Debug)]
pub struct RealTimeScheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    clock: Box<dyn Clock>,
    max_tick: SimTime,
    max_lateness: SimTime,
}

/// Default per-sleep bound of the wait loop: 20 ms keeps the loop
/// responsive to deadline re-checks without busy-waiting.
const DEFAULT_MAX_TICK: SimTime = SimTime::from_millis(20);

impl<E: Eq> RealTimeScheduler<E> {
    /// Creates a scheduler on a fresh [`MonotonicClock`]; wall time zero
    /// is the moment of this call.
    pub fn new() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// Creates a scheduler on an injected clock (a [`ManualClock`] in
    /// tests).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        RealTimeScheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            clock,
            max_tick: DEFAULT_MAX_TICK,
            max_lateness: SimTime::ZERO,
        }
    }

    /// Sets the wait loop's per-sleep bound.
    ///
    /// # Panics
    ///
    /// Panics on a zero tick (the wait loop could not make progress).
    pub fn with_max_tick(mut self, tick: SimTime) -> Self {
        assert!(!tick.is_zero(), "max tick must be positive");
        self.max_tick = tick;
        self
    }

    /// The current wall-clock reading (time since the scheduler's clock
    /// started).
    pub fn wall_now(&self) -> SimTime {
        self.clock.now()
    }

    /// The worst lateness observed so far: how far past its deadline the
    /// tardiest dispatch happened (zero when every event fired on time).
    pub fn max_lateness(&self) -> SimTime {
        self.max_lateness
    }
}

impl<E: Eq> Default for RealTimeScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> Scheduler<E> for RealTimeScheduler<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.schedule_in(self.now, delay, event);
    }

    fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let (deadline, event) = self.queue.pop()?;
        loop {
            let wall = self.clock.now();
            if wall >= deadline {
                self.max_lateness = self.max_lateness.max(wall.saturating_sub(deadline));
                break;
            }
            let remaining = deadline.saturating_sub(wall);
            self.clock.sleep(remaining.min(self.max_tick));
        }
        debug_assert!(deadline >= self.now, "event queue went backwards in time");
        self.now = deadline;
        Some((deadline, event))
    }

    fn peek_deadline(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives any scheduler to completion, collecting dispatch order.
    fn drain(sched: &mut dyn Scheduler<u32>) -> Vec<(SimTime, u32)> {
        std::iter::from_fn(|| sched.pop_next()).collect()
    }

    #[test]
    fn des_scheduler_matches_event_queue_semantics() {
        let mut sched = DesScheduler::new();
        let mut queue = EventQueue::new();
        // Same schedule: absolute times, FIFO ties, relative offsets.
        for (t, e) in [(3u64, 30u32), (1, 10), (1, 11), (2, 20)] {
            sched.schedule(SimTime::from_secs(t), e);
            queue.schedule(SimTime::from_secs(t), e);
        }
        assert_eq!(sched.scheduled_total(), queue.scheduled_total());
        assert_eq!(sched.pending(), queue.len());
        loop {
            let a = sched.pop_next();
            let b = queue.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn des_schedule_in_is_relative_to_last_dispatch() {
        let mut sched = DesScheduler::new();
        sched.schedule(SimTime::from_secs(5), 1u32);
        sched.pop_next();
        assert_eq!(sched.now(), SimTime::from_secs(5));
        sched.schedule_in(SimTime::from_secs(2), 2);
        assert_eq!(sched.peek_deadline(), Some(SimTime::from_secs(7)));
        // Saturates instead of overflowing.
        sched.schedule_in(SimTime::MAX, 3);
        sched.pop_next();
        assert_eq!(sched.pop_next(), Some((SimTime::MAX, 3)));
    }

    #[test]
    fn pop_next_until_respects_horizon_inclusively() {
        let mut sched = DesScheduler::new();
        sched.schedule(SimTime::from_secs(1), 1u32);
        sched.schedule(SimTime::from_secs(3), 3);
        assert_eq!(
            sched.pop_next_until(SimTime::from_secs(1)),
            Some((SimTime::from_secs(1), 1))
        );
        assert_eq!(sched.pop_next_until(SimTime::from_secs(2)), None);
        assert_eq!(sched.pending(), 1, "beyond-horizon event still pending");
    }

    #[test]
    fn realtime_with_manual_clock_dispatches_at_deadlines() {
        let mut sched = RealTimeScheduler::with_clock(Box::new(ManualClock::new()));
        sched.schedule(SimTime::from_millis(10), 2u32);
        sched.schedule(SimTime::from_millis(5), 1);
        let order = drain(&mut sched);
        assert_eq!(
            order,
            vec![(SimTime::from_millis(5), 1), (SimTime::from_millis(10), 2)]
        );
        assert_eq!(sched.now(), SimTime::from_millis(10));
        // The manual clock advanced exactly to the last deadline: the
        // scheduler slept precisely the remaining gaps, never past them.
        assert_eq!(sched.wall_now(), SimTime::from_millis(10));
        assert_eq!(sched.max_lateness(), SimTime::ZERO);
    }

    /// A [`ManualClock`] that shares its sleep count with the test.
    #[derive(Debug)]
    struct CountingClock {
        inner: ManualClock,
        sleeps: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl Clock for CountingClock {
        fn now(&self) -> SimTime {
            self.inner.now()
        }

        fn sleep(&mut self, duration: SimTime) {
            self.sleeps
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.sleep(duration);
        }
    }

    #[test]
    fn realtime_wait_loop_ticks_are_bounded() {
        let sleeps = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let clock = CountingClock {
            inner: ManualClock::new(),
            sleeps: sleeps.clone(),
        };
        let mut sched =
            RealTimeScheduler::with_clock(Box::new(clock)).with_max_tick(SimTime::from_millis(1));
        sched.schedule(SimTime::from_millis(10), 0u32);
        sched.pop_next();
        // 10 ms of waiting at a 1 ms tick bound: ten bounded sleeps, each
        // followed by a fresh clock read.
        assert_eq!(sleeps.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn realtime_past_deadlines_dispatch_immediately_and_record_lateness() {
        let mut clock = ManualClock::new();
        clock.sleep(SimTime::from_millis(8)); // wall already at 8 ms
        let mut sched = RealTimeScheduler::with_clock(Box::new(clock));
        sched.schedule(SimTime::from_millis(3), 1u32);
        let popped = sched.pop_next();
        assert_eq!(popped, Some((SimTime::from_millis(3), 1)));
        // Logical time is the deadline, not the (later) wall reading, so
        // follow-up schedule_in offsets stay anchored to the schedule.
        assert_eq!(sched.now(), SimTime::from_millis(3));
        assert_eq!(sched.max_lateness(), SimTime::from_millis(5));
    }

    #[test]
    fn realtime_periodic_ticks_do_not_drift() {
        let mut sched = RealTimeScheduler::with_clock(Box::new(ManualClock::new()));
        sched.schedule(SimTime::from_millis(10), 0u32);
        for _ in 0..5 {
            let (now, _) = sched.pop_next().expect("tick pending");
            let _ = now;
            sched.schedule_in(SimTime::from_millis(10), 0u32);
        }
        // After five re-schedules the next deadline is exactly 60 ms:
        // anchored at deadlines, not at wall readings.
        assert_eq!(sched.peek_deadline(), Some(SimTime::from_millis(60)));
    }

    #[test]
    fn schedulers_are_object_safe() {
        fn via_dyn(sched: &mut dyn Scheduler<u32>) -> Option<(SimTime, u32)> {
            sched.schedule(SimTime::from_secs(1), 7);
            sched.pop_next()
        }
        let mut des = DesScheduler::new();
        assert_eq!(via_dyn(&mut des), Some((SimTime::from_secs(1), 7)));
        let mut rt = RealTimeScheduler::with_clock(Box::new(ManualClock::new()));
        assert_eq!(via_dyn(&mut rt), Some((SimTime::from_secs(1), 7)));
    }
}
