//! Sampling distributions.
//!
//! Implemented from scratch (the offline `rand` build ships only uniform
//! primitives). The workload generators lean on two families:
//!
//! * [`LogNormal`] — the classic heavy-tailed model for task durations; the
//!   paper's duration CDFs are close to log-normal in the body.
//! * [`Empirical`] — a piecewise quantile function anchored at the exact
//!   percentiles the paper publishes (e.g. AdobeTrace p50 = 120 s,
//!   p75 = 300 s, p90 = 1020 s, ...), interpolated in log-space so the tail
//!   behaves like the published one.

use crate::rng::SimRng;

/// A sampleable real-valued distribution.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Exponential distribution with the given rate λ (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { rate: 1.0 / mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Normal distribution, sampled via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        Normal { mean, std_dev }
    }

    /// Draws a standard-normal variate.
    pub fn standard_sample(rng: &mut SimRng) -> f64 {
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std_dev * Normal::standard_sample(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Fits a log-normal to two published quantiles.
    ///
    /// Given `(p_a, value_a)` and `(p_b, value_b)` with `p_a < p_b`, solves
    /// for `(mu, sigma)` so the distribution passes through both anchors.
    /// This is how the workload generators are calibrated to the paper's
    /// CDFs.
    ///
    /// # Panics
    ///
    /// Panics if quantiles are out of `(0, 1)`, misordered, or values are
    /// non-positive.
    pub fn from_quantiles(p_a: f64, value_a: f64, p_b: f64, value_b: f64) -> Self {
        assert!(0.0 < p_a && p_a < p_b && p_b < 1.0, "quantiles misordered");
        assert!(value_a > 0.0 && value_b > 0.0, "values must be positive");
        let z_a = standard_normal_quantile(p_a);
        let z_b = standard_normal_quantile(p_b);
        let sigma = (value_b.ln() - value_a.ln()) / (z_b - z_a);
        let mu = value_a.ln() - sigma * z_a;
        LogNormal::new(mu, sigma.max(0.0))
    }

    /// The distribution's median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Normal::standard_sample(rng)).exp()
    }
}

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// max absolute error ~1.15e-9 — far below workload-model noise).
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// An empirical distribution defined by quantile anchors, interpolated
/// piecewise in log-space (geometric interpolation).
///
/// This lets the workload generators pin the *exact* percentiles the paper
/// publishes and interpolate plausibly between them, with heavy-tail-friendly
/// behaviour past the last anchor.
///
/// # Example
///
/// ```
/// use notebookos_des::{Distribution, Empirical, SimRng};
///
/// // AdobeTrace task durations (seconds) from §2.3.1.
/// let durations = Empirical::from_quantiles(&[
///     (0.50, 120.0),
///     (0.75, 300.0),
///     (0.90, 1020.0),
///     (0.95, 2160.0),
///     (0.99, 10920.0),
/// ]).unwrap();
/// let mut rng = SimRng::seed(1);
/// let sample = durations.sample(&mut rng);
/// assert!(sample > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Sorted `(quantile, value)` anchors; always bracketed by an implicit
    /// minimum and a tail extrapolation.
    anchors: Vec<(f64, f64)>,
    /// Lower bound (value of the 0th quantile).
    floor: f64,
    /// Optional upper bound truncating the extrapolated tail.
    ceiling: Option<f64>,
}

/// Error constructing an [`Empirical`] distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmpiricalError {
    /// Fewer than two anchors supplied.
    TooFewAnchors,
    /// Quantiles not strictly increasing in `(0, 1)`, or values not
    /// non-decreasing and positive.
    Malformed,
}

impl std::fmt::Display for EmpiricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmpiricalError::TooFewAnchors => write!(f, "need at least two quantile anchors"),
            EmpiricalError::Malformed => {
                write!(
                    f,
                    "anchors must be strictly increasing in (0, 1) with positive values"
                )
            }
        }
    }
}

impl std::error::Error for EmpiricalError {}

impl Empirical {
    /// Builds a distribution from `(quantile, value)` anchors.
    ///
    /// The floor (0th percentile) defaults to a fraction of the first
    /// anchor's value; use [`Empirical::with_floor`] to pin it (e.g. the
    /// 15-second AdobeTrace sampling granularity).
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two anchors are given, quantiles are
    /// not strictly increasing inside `(0, 1)`, or values are non-positive
    /// or decreasing.
    pub fn from_quantiles(anchors: &[(f64, f64)]) -> Result<Self, EmpiricalError> {
        if anchors.len() < 2 {
            return Err(EmpiricalError::TooFewAnchors);
        }
        for window in anchors.windows(2) {
            let (qa, va) = window[0];
            let (qb, vb) = window[1];
            if !(0.0 < qa && qa < qb && qb < 1.0) || va <= 0.0 || vb < va {
                return Err(EmpiricalError::Malformed);
            }
        }
        let floor = anchors[0].1 * 0.05;
        Ok(Empirical {
            anchors: anchors.to_vec(),
            floor: floor.max(f64::MIN_POSITIVE),
            ceiling: None,
        })
    }

    /// Sets the minimum sample value (the 0th-percentile anchor).
    ///
    /// # Panics
    ///
    /// Panics if `floor` is non-positive or exceeds the first anchor value.
    pub fn with_floor(mut self, floor: f64) -> Self {
        assert!(floor > 0.0 && floor <= self.anchors[0].1);
        self.floor = floor;
        self
    }

    /// Truncates the extrapolated tail at `ceiling` (the 100th-percentile
    /// anchor).
    ///
    /// Without a ceiling the Pareto-like extrapolation past the last anchor
    /// has a tail index near 1 for steep published percentiles, so sample
    /// *sums* are dominated by the single largest draw. Models of
    /// physically bounded quantities (e.g. one Raft commit round) should
    /// pin a ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `ceiling` is below the last anchor value.
    pub fn with_ceiling(mut self, ceiling: f64) -> Self {
        let last = self.anchors[self.anchors.len() - 1].1;
        assert!(
            ceiling >= last,
            "ceiling {ceiling} below last anchor {last}"
        );
        self.ceiling = Some(ceiling);
        self
    }

    /// Evaluates the quantile function at `p` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
        let first = self.anchors[0];
        if p <= first.0 {
            return geo_lerp(0.0, self.floor, first.0, first.1, p);
        }
        for window in self.anchors.windows(2) {
            let (qa, va) = window[0];
            let (qb, vb) = window[1];
            if p <= qb {
                return geo_lerp(qa, va, qb, vb, p);
            }
        }
        // Tail beyond the last anchor: extrapolate with the slope of the
        // last segment in (logit, log-value) space, which produces a
        // Pareto-like tail.
        let (qa, va) = self.anchors[self.anchors.len() - 2];
        let (qb, vb) = self.anchors[self.anchors.len() - 1];
        let slope = (vb.ln() - va.ln()) / (logit(qb) - logit(qa));
        let tail = (vb.ln() + slope * (logit(p) - logit(qb))).exp();
        match self.ceiling {
            Some(ceiling) => tail.min(ceiling),
            None => tail,
        }
    }

    /// The distribution's median (quantile at 0.5).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Avoid the extreme open-interval endpoints.
        let p = rng.next_f64_open().clamp(1e-9, 1.0 - 1e-9);
        self.quantile(p)
    }
}

fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

/// Geometric interpolation between `(qa, va)` and `(qb, vb)` evaluated at `p`.
fn geo_lerp(qa: f64, va: f64, qb: f64, vb: f64, p: f64) -> f64 {
    let t = (p - qa) / (qb - qa);
    if va <= 0.0 {
        // Degenerate floor: fall back to linear.
        return va + t * (vb - va);
    }
    (va.ln() + t * (vb.ln() - va.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(dist: &impl Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed(seed);
        dist.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_mean_matches() {
        let d = Uniform::new(2.0, 4.0);
        let m = mean_of(&d, 1, 100_000);
        assert!((m - 3.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(5.0);
        let m = mean_of(&d, 2, 100_000);
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(10.0, 2.0);
        let mut rng = SimRng::seed(3);
        let samples = d.sample_n(&mut rng, 100_000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::from_quantiles(0.5, 120.0, 0.9, 1020.0);
        assert!((d.median() - 120.0).abs() < 1e-6);
        // Empirically check the 90th percentile.
        let mut rng = SimRng::seed(4);
        let mut samples = d.sample_n(&mut rng, 100_000);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p90 = samples[90_000];
        assert!((p90 / 1020.0 - 1.0).abs() < 0.05, "p90 {p90}");
    }

    #[test]
    fn normal_quantile_is_accurate() {
        assert!((standard_normal_quantile(0.5)).abs() < 1e-8);
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((standard_normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((standard_normal_quantile(0.9) - 1.281552).abs() < 1e-4);
    }

    #[test]
    fn empirical_hits_anchors() {
        let d = Empirical::from_quantiles(&[(0.5, 120.0), (0.75, 300.0), (0.9, 1020.0)]).unwrap();
        assert!((d.quantile(0.5) - 120.0).abs() < 1e-9);
        assert!((d.quantile(0.75) - 300.0).abs() < 1e-9);
        assert!((d.quantile(0.9) - 1020.0).abs() < 1e-9);
        // Monotone between anchors.
        let mut prev = 0.0;
        for i in 1..200 {
            let q = d.quantile(i as f64 / 200.0);
            assert!(q >= prev, "quantile not monotone at {i}");
            prev = q;
        }
    }

    #[test]
    fn empirical_tail_extends_beyond_last_anchor() {
        let d = Empirical::from_quantiles(&[(0.5, 120.0), (0.9, 1020.0)]).unwrap();
        assert!(d.quantile(0.99) > 1020.0);
        assert!(d.quantile(0.999) > d.quantile(0.99));
    }

    #[test]
    fn empirical_respects_floor() {
        let d = Empirical::from_quantiles(&[(0.5, 120.0), (0.9, 1020.0)])
            .unwrap()
            .with_floor(15.0);
        let mut rng = SimRng::seed(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 15.0 - 1e-9);
        }
    }

    #[test]
    fn empirical_ceiling_truncates_tail() {
        let d = Empirical::from_quantiles(&[(0.5, 120.0), (0.9, 1020.0)])
            .unwrap()
            .with_ceiling(2000.0);
        assert!(d.quantile(0.9999999) <= 2000.0);
        // Anchors and the body are unaffected.
        assert!((d.quantile(0.5) - 120.0).abs() < 1e-9);
        assert!((d.quantile(0.9) - 1020.0).abs() < 1e-9);
        let mut rng = SimRng::seed(11);
        for _ in 0..50_000 {
            assert!(d.sample(&mut rng) <= 2000.0);
        }
    }

    #[test]
    #[should_panic(expected = "below last anchor")]
    fn empirical_ceiling_below_anchor_panics() {
        let _ = Empirical::from_quantiles(&[(0.5, 120.0), (0.9, 1020.0)])
            .unwrap()
            .with_ceiling(100.0);
    }

    #[test]
    fn empirical_rejects_malformed() {
        assert_eq!(
            Empirical::from_quantiles(&[(0.5, 120.0)]),
            Err(EmpiricalError::TooFewAnchors)
        );
        assert_eq!(
            Empirical::from_quantiles(&[(0.9, 120.0), (0.5, 300.0)]),
            Err(EmpiricalError::Malformed)
        );
        assert_eq!(
            Empirical::from_quantiles(&[(0.5, 300.0), (0.9, 120.0)]),
            Err(EmpiricalError::Malformed)
        );
        assert_eq!(
            Empirical::from_quantiles(&[(0.5, -1.0), (0.9, 120.0)]),
            Err(EmpiricalError::Malformed)
        );
    }

    #[test]
    fn empirical_sampling_matches_quantiles() {
        let d = Empirical::from_quantiles(&[(0.5, 120.0), (0.75, 300.0), (0.9, 1020.0)]).unwrap();
        let mut rng = SimRng::seed(6);
        let mut samples = d.sample_n(&mut rng, 200_000);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = samples[100_000];
        let p90 = samples[180_000];
        assert!((p50 / 120.0 - 1.0).abs() < 0.05, "p50 {p50}");
        assert!((p90 / 1020.0 - 1.0).abs() < 0.05, "p90 {p90}");
    }
}
