//! Deterministic discrete-event simulation (DES) core for the NotebookOS
//! reproduction.
//!
//! Every experiment in this repository — the 17.5-hour prototype-scale runs
//! and the 90-day simulation study — executes inside this engine. The engine
//! is deliberately tiny and fully deterministic: virtual time is an integer
//! microsecond counter, events are totally ordered by `(time, sequence)`, and
//! all randomness flows through a seeded [`SimRng`].
//!
//! # Example
//!
//! ```
//! use notebookos_des::{EventQueue, SimTime, Simulation, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl World for Counter {
//!     type Event = &'static str;
//!
//!     fn handle(&mut self, now: SimTime, event: &'static str, queue: &mut EventQueue<&'static str>) {
//!         self.fired += 1;
//!         if event == "ping" && self.fired < 3 {
//!             queue.schedule_in(now, SimTime::from_secs(1), "ping");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.queue_mut().schedule(SimTime::ZERO, "ping");
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod queue;
pub mod rng;
pub mod scheduler;
pub mod sim;
pub mod time;

pub use dist::{Distribution, Empirical, Exponential, LogNormal, Normal, Uniform};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use scheduler::{
    Clock, DesScheduler, ManualClock, MonotonicClock, RealTimeScheduler, Scheduler,
};
pub use sim::{Simulation, World};
pub use time::SimTime;
