//! Virtual simulation time.
//!
//! [`SimTime`] is an integer number of microseconds since the start of the
//! simulation. Integer time makes event ordering exact and the whole engine
//! reproducible across platforms; microsecond resolution is comfortably finer
//! than any latency the NotebookOS evaluation reports (the finest is
//! sub-millisecond Raft message latency).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, measured in microseconds.
///
/// `SimTime` is used both as an *instant* (time since simulation start) and
/// as a *duration*; the arithmetic is the same and the evaluation code reads
/// more naturally without a second newtype threading through every signature.
///
/// # Example
///
/// ```
/// use notebookos_des::SimTime;
///
/// let t = SimTime::from_secs(2) + SimTime::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// assert_eq!(t.as_secs_f64(), 2.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates a time from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60 * 1_000_000)
    }

    /// Creates a time from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600 * 1_000_000)
    }

    /// Creates a time from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 24 * 3_600 * 1_000_000)
    }

    /// Creates a time from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a time from fractional milliseconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the time in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    /// Returns the time in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 8.64e10
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns true for the zero instant/duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros < 1_000 {
            write!(f, "{micros}us")
        } else if micros < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if micros < 3_600_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}h", self.as_hours_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimTime::from_mins(2).as_secs(), 120);
        assert_eq!(SimTime::from_hours(1).as_secs(), 3_600);
        assert_eq!(SimTime::from_days(1).as_hours_f64(), 24.0);
    }

    #[test]
    fn fractional_constructors_saturate() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimTime::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(a * 2, SimTime::from_secs(6));
        assert_eq!(a / 3, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(b), SimTime::MAX);
    }

    #[test]
    fn min_max_and_sum() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        let total: SimTime = [a, b].into_iter().sum();
        assert_eq!(total, SimTime::from_secs(4));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_micros(10)), "10us");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000s");
        assert_eq!(format!("{}", SimTime::from_hours(2)), "2.000h");
    }
}
