//! Seeded randomness for deterministic workloads.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random-number generator used by every stochastic component.
///
/// All simulation randomness flows through `SimRng` so that a single `u64`
/// seed makes an entire experiment reproducible. `fork` derives independent
/// streams (one per session, per host, ...) so that adding a consumer does
/// not perturb the draws other consumers see.
///
/// # Example
///
/// ```
/// use notebookos_des::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Forking mixes the stream id into fresh seed material drawn from this
    /// generator, so `fork(0)` and `fork(1)` are decorrelated, and two forks
    /// with the same id taken at different points differ as well.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.next_u64();
        // SplitMix64 finalizer mixes the stream id thoroughly.
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed(z)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[0, 1)` that is never exactly zero (safe for `ln`).
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.inner.gen_range(0..len)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed(7);
        let mut x = root.fork(0);
        let mut y = root.fork(1);
        let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_and_index_are_in_range() {
        let mut rng = SimRng::seed(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            assert!(rng.index(3) < 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn open_interval_never_zero() {
        let mut rng = SimRng::seed(9);
        for _ in 0..10_000 {
            assert!(rng.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn range_f64_spans_interval() {
        let mut rng = SimRng::seed(2);
        for _ in 0..1000 {
            let v = rng.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
