//! Property tests for the DES core: event ordering, RNG determinism, and
//! distribution sanity.

use proptest::prelude::*;

use notebookos_des::{Distribution, EventQueue, Exponential, LogNormal, SimRng, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some((t, idx)) = queue.pop() {
            prop_assert!(t >= last_time);
            if t > last_time {
                seen_at_time.clear();
            }
            // FIFO within a timestamp: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev, "tie broken out of order");
            }
            seen_at_time.push(idx);
            last_time = t;
        }
    }

    /// Forked RNG streams are reproducible from the same root seed.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = SimRng::seed(seed);
        let mut b = SimRng::seed(seed);
        let mut fa = a.fork(stream);
        let mut fb = b.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// Exponential samples are non-negative and have roughly the right mean.
    #[test]
    fn exponential_sane(mean in 0.1f64..1000.0, seed in any::<u64>()) {
        let dist = Exponential::with_mean(mean);
        let mut rng = SimRng::seed(seed);
        let samples = dist.sample_n(&mut rng, 4000);
        prop_assert!(samples.iter().all(|&s| s >= 0.0 && s.is_finite()));
        let got = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((got / mean - 1.0).abs() < 0.25, "mean {got} vs {mean}");
    }

    /// Log-normal fitting hits the requested quantile pair.
    #[test]
    fn lognormal_fit_hits_anchors(median in 1.0f64..1000.0, ratio in 1.1f64..50.0) {
        let p90_value = median * ratio;
        let dist = LogNormal::from_quantiles(0.5, median, 0.9, p90_value);
        prop_assert!((dist.median() / median - 1.0).abs() < 1e-9);
        // Sampled median lands near the anchor.
        let mut rng = SimRng::seed(7);
        let mut samples = dist.sample_n(&mut rng, 4001);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got = samples[2000];
        prop_assert!((got / median - 1.0).abs() < 0.2, "sampled median {got} vs {median}");
    }

    /// SimTime arithmetic: conversion round trips and ordering. Bounded to
    /// 2^52 µs (~142 years) — the range where `f64` second conversions are
    /// exact at millisecond precision.
    #[test]
    fn simtime_round_trips(us in 0u64..(1u64 << 52)) {
        let t = SimTime::from_micros(us);
        prop_assert_eq!(t.as_micros(), us);
        prop_assert_eq!(SimTime::from_secs_f64(t.as_secs_f64()).as_millis(), t.as_millis());
        prop_assert!(t + SimTime::from_micros(1) > t);
    }
}
