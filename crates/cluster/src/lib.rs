//! GPU cluster substrate for the NotebookOS reproduction.
//!
//! Models the fleet of GPU servers the platform schedules onto: per-host
//! device-level GPU binding, the two-level (subscribed vs committed)
//! resource accounting behind the paper's subscription-ratio mechanism
//! (§3.4.1), the pre-warmed container pool (§3.2.3), and calibrated
//! provisioning-latency models.
//!
//! # Example
//!
//! ```
//! use notebookos_cluster::{Cluster, ResourceBundle, ResourceRequest};
//!
//! let mut cluster = Cluster::with_hosts(30, ResourceBundle::p3_16xlarge());
//! assert_eq!(cluster.total_gpus(), 240);
//!
//! // Subscribe a replica, then exclusively commit during a cell execution.
//! let req = ResourceRequest::one_gpu();
//! let host_id = cluster.subscription_candidates(&req, 3, 1.0)[0];
//! let host = cluster.host_mut(host_id).unwrap();
//! host.subscribe(&req);
//! let devices = host.commit(7, &req)?;
//! assert_eq!(devices.len(), 1);
//! # Ok::<(), notebookos_cluster::CommitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod container;
pub mod host;
pub mod pool;
pub mod provisioning;
pub mod resources;

pub use cluster::{Cluster, HostMutation, RankScratch, Viability};
pub use container::{Container, ContainerState, TransitionError};
pub use host::{CommitError, Host, HostId, OwnerId};
pub use pool::{ForgottenContainers, MinPerHost, PrewarmPolicy, PrewarmPool};
pub use provisioning::ProvisioningModel;
pub use resources::{ResourceBundle, ResourceRequest};
