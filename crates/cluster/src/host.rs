//! A GPU server: device-level GPU binding plus the two-level resource
//! accounting NotebookOS relies on.
//!
//! Each host tracks resources at two levels (§3.2.1):
//!
//! * **Subscribed** — what the kernel replicas placed on this host have
//!   *requested*. Subscriptions deliberately oversubscribe the host; the
//!   subscription ratio (SR) keeps this bounded.
//! * **Committed** — what is *exclusively bound* right now, i.e. the
//!   resources of replicas actively executing a cell. Committed resources
//!   can never exceed capacity.

use std::collections::HashMap;

use crate::resources::{ResourceBundle, ResourceRequest};

/// Identifier of a GPU server.
pub type HostId = u64;

/// Opaque identifier of whoever holds a commitment (a kernel-replica id in
/// the platform).
pub type OwnerId = u64;

/// Why a commit attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// Not enough uncommitted capacity in some dimension.
    Insufficient {
        /// What was requested.
        requested: ResourceBundle,
        /// What remains uncommitted.
        available: ResourceBundle,
    },
    /// The owner already holds a commitment on this host.
    AlreadyCommitted(OwnerId),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Insufficient {
                requested,
                available,
            } => {
                write!(f, "requested {requested} but only {available} available")
            }
            CommitError::AlreadyCommitted(owner) => {
                write!(f, "owner {owner} already holds a commitment")
            }
        }
    }
}

impl std::error::Error for CommitError {}

/// A GPU server in the NotebookOS cluster.
#[derive(Debug, Clone)]
pub struct Host {
    id: HostId,
    capacity: ResourceBundle,
    /// Device-level GPU ownership: `gpu_owner[d] == Some(owner)` while
    /// device `d` is exclusively bound.
    gpu_owner: Vec<Option<OwnerId>>,
    /// Exclusively bound resources (never exceeds capacity).
    committed: ResourceBundle,
    /// Live commitments by owner.
    commitments: HashMap<OwnerId, ResourceBundle>,
    /// Sum of GPU requests of all replicas scheduled here (the `S` in the
    /// SR formula), including idle replicas.
    subscribed_gpus: u64,
    /// Number of kernel-replica containers scheduled here.
    replica_count: u32,
    /// Set when the autoscaler is draining this host for scale-in.
    draining: bool,
}

impl Host {
    /// Creates a host with the given capacity.
    pub fn new(id: HostId, capacity: ResourceBundle) -> Self {
        Host {
            id,
            capacity,
            gpu_owner: vec![None; capacity.gpus as usize],
            committed: ResourceBundle::default(),
            commitments: HashMap::new(),
            subscribed_gpus: 0,
            replica_count: 0,
            draining: false,
        }
    }

    /// An 8-GPU server matching the evaluation's EC2 instances.
    pub fn p3_16xlarge(id: HostId) -> Self {
        Host::new(id, ResourceBundle::p3_16xlarge())
    }

    /// The host id.
    #[inline]
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> ResourceBundle {
        self.capacity
    }

    /// Currently committed (exclusively bound) resources.
    #[inline]
    pub fn committed(&self) -> ResourceBundle {
        self.committed
    }

    /// Capacity minus committed.
    #[inline]
    pub fn available(&self) -> ResourceBundle {
        self.capacity.saturating_sub(&self.committed)
    }

    /// Number of GPUs not exclusively bound right now.
    #[inline]
    pub fn idle_gpus(&self) -> u32 {
        self.capacity.gpus - self.committed.gpus
    }

    /// Number of GPUs exclusively bound right now (the `C` of §3.4.2).
    #[inline]
    pub fn committed_gpus(&self) -> u32 {
        self.committed.gpus
    }

    /// Sum of GPU requests subscribed by replicas on this host (`S`).
    #[inline]
    pub fn subscribed_gpus(&self) -> u64 {
        self.subscribed_gpus
    }

    /// Number of replica containers scheduled here.
    #[inline]
    pub fn replica_count(&self) -> u32 {
        self.replica_count
    }

    /// Whether the host is being drained for scale-in.
    #[inline]
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Marks/unmarks the host as draining.
    pub fn set_draining(&mut self, draining: bool) {
        self.draining = draining;
    }

    /// The subscription ratio `S / (G · R)` (§3.4.1), where `R` is the
    /// replication factor. Returns 0 for GPU-less hosts.
    #[inline]
    pub fn subscription_ratio(&self, replication_factor: u32) -> f64 {
        let denom = u64::from(self.capacity.gpus) * u64::from(replication_factor.max(1));
        if denom == 0 {
            return 0.0;
        }
        self.subscribed_gpus as f64 / denom as f64
    }

    /// Registers a kernel replica's subscription (does **not** commit
    /// resources).
    pub fn subscribe(&mut self, request: &ResourceRequest) {
        self.subscribed_gpus += u64::from(request.gpus);
        self.replica_count += 1;
    }

    /// Removes a kernel replica's subscription.
    ///
    /// # Panics
    ///
    /// Panics if no matching subscription exists (accounting bug).
    pub fn unsubscribe(&mut self, request: &ResourceRequest) {
        assert!(
            self.subscribed_gpus >= u64::from(request.gpus) && self.replica_count > 0,
            "unsubscribe without subscription on host {}",
            self.id
        );
        self.subscribed_gpus -= u64::from(request.gpus);
        self.replica_count -= 1;
    }

    /// Whether `request` could be committed right now.
    #[inline]
    pub fn can_commit(&self, request: &ResourceRequest) -> bool {
        self.available()
            .covers(&ResourceBundle::from_request(request))
    }

    /// Exclusively binds `request` for `owner`, returning the GPU device ids
    /// bound (§3.3: the Global Scheduler embeds these into the request
    /// metadata).
    ///
    /// # Errors
    ///
    /// Returns [`CommitError::Insufficient`] when capacity is lacking and
    /// [`CommitError::AlreadyCommitted`] when `owner` already holds a
    /// commitment here.
    pub fn commit(
        &mut self,
        owner: OwnerId,
        request: &ResourceRequest,
    ) -> Result<Vec<u32>, CommitError> {
        let mut devices = Vec::with_capacity(request.gpus as usize);
        self.commit_into(owner, request, &mut devices)?;
        Ok(devices)
    }

    /// Allocation-free form of [`Host::commit`]: the bound GPU device ids
    /// are written into `devices` (cleared first), so a caller that
    /// reuses the buffer commits on every cell execution without
    /// allocating.
    ///
    /// # Errors
    ///
    /// Exactly [`Host::commit`]'s; on error `devices` is left empty and
    /// nothing is bound.
    pub fn commit_into(
        &mut self,
        owner: OwnerId,
        request: &ResourceRequest,
        devices: &mut Vec<u32>,
    ) -> Result<(), CommitError> {
        devices.clear();
        if self.commitments.contains_key(&owner) {
            return Err(CommitError::AlreadyCommitted(owner));
        }
        let bundle = ResourceBundle::from_request(request);
        if !self.available().covers(&bundle) {
            return Err(CommitError::Insufficient {
                requested: bundle,
                available: self.available(),
            });
        }
        for (device, slot) in self.gpu_owner.iter_mut().enumerate() {
            if devices.len() == request.gpus as usize {
                break;
            }
            if slot.is_none() {
                *slot = Some(owner);
                devices.push(device as u32);
            }
        }
        debug_assert_eq!(
            devices.len(),
            request.gpus as usize,
            "device accounting drift"
        );
        self.committed += bundle;
        self.commitments.insert(owner, bundle);
        Ok(())
    }

    /// Releases `owner`'s commitment, returning the freed bundle.
    ///
    /// # Panics
    ///
    /// Panics if `owner` holds no commitment (accounting bug).
    pub fn release(&mut self, owner: OwnerId) -> ResourceBundle {
        let bundle = self
            .commitments
            .remove(&owner)
            .unwrap_or_else(|| panic!("owner {owner} holds no commitment on host {}", self.id));
        for slot in &mut self.gpu_owner {
            if *slot == Some(owner) {
                *slot = None;
            }
        }
        self.committed -= bundle;
        bundle
    }

    /// Whether `owner` currently holds a commitment here.
    pub fn has_commitment(&self, owner: OwnerId) -> bool {
        self.commitments.contains_key(&owner)
    }

    /// Number of live commitments (actively executing replicas).
    pub fn active_commitments(&self) -> usize {
        self.commitments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_req(gpus: u32) -> ResourceRequest {
        ResourceRequest::new(4000, 16_384, gpus, 16)
    }

    #[test]
    fn commit_binds_distinct_devices() {
        let mut h = Host::p3_16xlarge(1);
        let d1 = h.commit(10, &gpu_req(4)).unwrap();
        let d2 = h.commit(11, &gpu_req(4)).unwrap();
        assert_eq!(d1, vec![0, 1, 2, 3]);
        assert_eq!(d2, vec![4, 5, 6, 7]);
        assert_eq!(h.idle_gpus(), 0);
        assert_eq!(h.active_commitments(), 2);
    }

    #[test]
    fn commit_rejects_over_capacity() {
        let mut h = Host::p3_16xlarge(1);
        h.commit(10, &gpu_req(6)).unwrap();
        let err = h.commit(11, &gpu_req(4)).unwrap_err();
        assert!(matches!(err, CommitError::Insufficient { .. }));
        assert!(h.can_commit(&gpu_req(2)));
        assert!(!h.can_commit(&gpu_req(3)));
    }

    #[test]
    fn double_commit_rejected() {
        let mut h = Host::p3_16xlarge(1);
        h.commit(10, &gpu_req(1)).unwrap();
        assert_eq!(
            h.commit(10, &gpu_req(1)).unwrap_err(),
            CommitError::AlreadyCommitted(10)
        );
    }

    #[test]
    fn release_returns_devices() {
        let mut h = Host::p3_16xlarge(1);
        h.commit(10, &gpu_req(8)).unwrap();
        assert!(h.has_commitment(10));
        let freed = h.release(10);
        assert_eq!(freed.gpus, 8);
        assert_eq!(h.idle_gpus(), 8);
        assert!(!h.has_commitment(10));
        // Devices are reusable afterwards.
        let d = h.commit(11, &gpu_req(2)).unwrap();
        assert_eq!(d, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "holds no commitment")]
    fn release_without_commit_panics() {
        let mut h = Host::p3_16xlarge(1);
        h.release(99);
    }

    #[test]
    fn subscription_ratio_matches_paper_example() {
        // §3.4.1: 8-GPU host serving 4 kernel containers each requiring 4
        // GPUs → S = 16, SR = 16 / (8·3) = 0.667.
        let mut h = Host::p3_16xlarge(1);
        for _ in 0..4 {
            h.subscribe(&gpu_req(4));
        }
        assert!((h.subscription_ratio(3) - 16.0 / 24.0).abs() < 1e-9);
        assert_eq!(h.subscribed_gpus(), 16);
        assert_eq!(h.replica_count(), 4);
        h.unsubscribe(&gpu_req(4));
        assert_eq!(h.subscribed_gpus(), 12);
    }

    #[test]
    #[should_panic(expected = "unsubscribe without subscription")]
    fn unsubscribe_underflow_panics() {
        let mut h = Host::p3_16xlarge(1);
        h.unsubscribe(&gpu_req(1));
    }

    #[test]
    fn cpu_only_commit_needs_no_devices() {
        let mut h = Host::p3_16xlarge(1);
        let devices = h
            .commit(1, &ResourceRequest::new(1000, 1024, 0, 0))
            .unwrap();
        assert!(devices.is_empty());
        assert_eq!(h.idle_gpus(), 8);
    }

    #[test]
    fn draining_flag() {
        let mut h = Host::p3_16xlarge(1);
        assert!(!h.is_draining());
        h.set_draining(true);
        assert!(h.is_draining());
    }

    #[test]
    fn gpu_less_host_sr_is_zero() {
        let h = Host::new(1, ResourceBundle::new(1000, 1000, 0));
        assert_eq!(h.subscription_ratio(3), 0.0);
    }
}
