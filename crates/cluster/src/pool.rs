//! The pre-warmed container pool (§3.2.3, "Pre-warmed Container Pool").
//!
//! The Container Prewarmer maintains warm containers per host so that
//! replica migrations (and, under the LCP baseline, ordinary cell requests)
//! skip cold container provisioning. Policies are pluggable; the default
//! keeps a minimum number of warm containers on every host.

use std::collections::{HashMap, HashSet};

use crate::host::HostId;

/// Pluggable policy deciding how many warm containers each host should hold.
pub trait PrewarmPolicy {
    /// Target number of warm containers for `host` given the current pool
    /// size on that host.
    fn target_for(&self, host: HostId, current: u32) -> u32;
}

/// The default policy: a fixed minimum per host (§3.2.3: "the Container
/// Prewarmer ensures that each server has a specified, minimum number of
/// pre-warmed containers available").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPerHost(pub u32);

impl PrewarmPolicy for MinPerHost {
    fn target_for(&self, _host: HostId, _current: u32) -> u32 {
        self.0
    }
}

/// Warm and in-flight containers dropped when a host left the cluster —
/// the reconciliation record callers fold into their own accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForgottenContainers {
    /// Warm containers that were sitting in the pool.
    pub warm: u32,
    /// Provisions that were still in flight; their completions will be
    /// dropped instead of resurrecting counts for the dead host.
    pub in_flight: u32,
}

impl ForgottenContainers {
    /// Total containers lost with the host.
    pub fn total(&self) -> u32 {
        self.warm + self.in_flight
    }
}

/// Tracks warm containers per host, plus provisions still in flight so
/// that deficit accounting does not double-provision and host removal
/// reconciles rather than silently dropping counts.
#[derive(Debug, Default)]
pub struct PrewarmPool {
    warm: HashMap<HostId, u32>,
    /// Containers being provisioned right now, per host.
    in_flight: HashMap<HostId, u32>,
    /// Hosts that left the cluster; late provision completions for them
    /// are discarded (host ids are never reused).
    gone: HashSet<HostId>,
    /// Totals for instrumentation.
    acquired: u64,
    missed: u64,
}

impl PrewarmPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        PrewarmPool::default()
    }

    /// Number of warm containers on `host`.
    pub fn warm_on(&self, host: HostId) -> u32 {
        self.warm.get(&host).copied().unwrap_or(0)
    }

    /// Total warm containers across the cluster.
    pub fn total_warm(&self) -> u32 {
        self.warm.values().sum()
    }

    /// Takes a warm container from `host` if one is available. Returns
    /// whether the acquisition hit the pool (miss = cold start needed).
    pub fn acquire(&mut self, host: HostId) -> bool {
        match self.warm.get_mut(&host) {
            Some(n) if *n > 0 => {
                *n -= 1;
                self.acquired += 1;
                true
            }
            _ => {
                self.missed += 1;
                false
            }
        }
    }

    /// Returns a container to `host`'s pool (LCP returns containers after
    /// execution instead of terminating them).
    pub fn put(&mut self, host: HostId) {
        if !self.gone.contains(&host) {
            *self.warm.entry(host).or_insert(0) += 1;
        }
    }

    /// Number of provisions currently in flight for `host`.
    pub fn in_flight_on(&self, host: HostId) -> u32 {
        self.in_flight.get(&host).copied().unwrap_or(0)
    }

    /// Total provisions in flight across the cluster.
    pub fn total_in_flight(&self) -> u32 {
        self.in_flight.values().sum()
    }

    /// Registers `count` container provisions as started for `host`. Each
    /// must be resolved later with [`PrewarmPool::provision_complete`].
    pub fn begin_provision(&mut self, host: HostId, count: u32) {
        if count > 0 && !self.gone.contains(&host) {
            *self.in_flight.entry(host).or_insert(0) += count;
        }
    }

    /// Resolves one in-flight provision for `host`. Returns `true` when the
    /// warm container entered the pool, `false` when it was dropped: either
    /// the host left the cluster mid-provision, or no matching
    /// [`PrewarmPool::begin_provision`] exists (an unbalanced completion
    /// must not inflate warm counts the deficit accounting trusts).
    pub fn provision_complete(&mut self, host: HostId) -> bool {
        if self.gone.contains(&host) {
            return false;
        }
        let Some(n) = self.in_flight.get_mut(&host) else {
            return false;
        };
        *n -= 1;
        if *n == 0 {
            self.in_flight.remove(&host);
        }
        self.put(host);
        true
    }

    /// Registers that a host left the cluster. Its warm containers vanish
    /// and its in-flight provisions are marked for discard; the returned
    /// record lets the caller reconcile both with its own accounting
    /// instead of having the counts silently disappear.
    pub fn forget_host(&mut self, host: HostId) -> ForgottenContainers {
        let warm = self.warm.remove(&host).unwrap_or(0);
        let in_flight = self.in_flight.remove(&host).unwrap_or(0);
        self.gone.insert(host);
        ForgottenContainers { warm, in_flight }
    }

    /// Computes the warm-container deficit per host under `policy` for the
    /// given host set: `(host, missing_count)` pairs, sorted by host id.
    /// The caller provisions that many containers (asynchronously), calling
    /// [`PrewarmPool::begin_provision`] up front and
    /// [`PrewarmPool::provision_complete`] as each becomes warm. In-flight
    /// provisions count toward a host's current stock so repeated deficit
    /// evaluations never double-provision.
    pub fn deficits<P: PrewarmPolicy>(&self, hosts: &[HostId], policy: &P) -> Vec<(HostId, u32)> {
        let mut out: Vec<(HostId, u32)> = hosts
            .iter()
            .filter_map(|&h| {
                let current = self.warm_on(h) + self.in_flight_on(h);
                let target = policy.target_for(h, current);
                (target > current).then(|| (h, target - current))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// `(pool hits, pool misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_hits_and_misses() {
        let mut pool = PrewarmPool::new();
        pool.put(1);
        assert!(pool.acquire(1));
        assert!(!pool.acquire(1));
        assert!(!pool.acquire(2));
        assert_eq!(pool.stats(), (1, 2));
    }

    #[test]
    fn totals() {
        let mut pool = PrewarmPool::new();
        pool.put(1);
        pool.put(1);
        pool.put(2);
        assert_eq!(pool.warm_on(1), 2);
        assert_eq!(pool.total_warm(), 3);
        let dropped = pool.forget_host(1);
        assert_eq!(
            dropped,
            ForgottenContainers {
                warm: 2,
                in_flight: 0
            }
        );
        assert_eq!(dropped.total(), 2);
        assert_eq!(pool.total_warm(), 1);
    }

    #[test]
    fn in_flight_provisions_reconcile_on_forget() {
        let mut pool = PrewarmPool::new();
        pool.begin_provision(1, 2);
        pool.begin_provision(2, 1);
        assert_eq!(pool.in_flight_on(1), 2);
        assert_eq!(pool.total_in_flight(), 3);
        // One completes normally and lands in the pool.
        assert!(pool.provision_complete(1));
        assert_eq!(pool.warm_on(1), 1);
        assert_eq!(pool.in_flight_on(1), 1);
        // The host leaves with one provision still in flight: both the
        // warm container and the in-flight one are reported, not dropped.
        let dropped = pool.forget_host(1);
        assert_eq!(
            dropped,
            ForgottenContainers {
                warm: 1,
                in_flight: 1
            }
        );
        // The late completion is discarded instead of resurrecting counts.
        assert!(!pool.provision_complete(1));
        assert_eq!(pool.warm_on(1), 0);
        // Unrelated hosts are unaffected.
        assert!(pool.provision_complete(2));
        assert_eq!(pool.warm_on(2), 1);
        // Puts and provisions for departed hosts are ignored.
        pool.put(1);
        pool.begin_provision(1, 3);
        assert_eq!(pool.warm_on(1), 0);
        assert_eq!(pool.in_flight_on(1), 0);
    }

    #[test]
    fn unmatched_provision_completion_is_rejected() {
        let mut pool = PrewarmPool::new();
        // No begin_provision: the completion must not conjure a warm
        // container (deficits would then under-provision this host).
        assert!(!pool.provision_complete(1));
        assert_eq!(pool.warm_on(1), 0);
        // Balanced completions still work afterwards.
        pool.begin_provision(1, 1);
        assert!(pool.provision_complete(1));
        assert!(!pool.provision_complete(1), "second resolve is unmatched");
        assert_eq!(pool.warm_on(1), 1);
    }

    #[test]
    fn deficits_count_in_flight_provisions() {
        let mut pool = PrewarmPool::new();
        pool.put(1);
        pool.begin_provision(1, 1);
        pool.begin_provision(2, 2);
        // Host 1 has 1 warm + 1 in flight, host 2 has 2 in flight: neither
        // needs more under MinPerHost(2); host 3 still needs both.
        assert_eq!(pool.deficits(&[1, 2, 3], &MinPerHost(2)), vec![(3, 2)]);
    }

    #[test]
    fn deficits_follow_policy() {
        let mut pool = PrewarmPool::new();
        pool.put(2);
        pool.put(2);
        let d = pool.deficits(&[1, 2, 3], &MinPerHost(2));
        assert_eq!(d, vec![(1, 2), (3, 2)]);
        // Satisfied hosts are omitted.
        assert!(pool.deficits(&[2], &MinPerHost(2)).is_empty());
        // Zero-minimum policy never asks for containers.
        assert!(pool.deficits(&[1, 2, 3], &MinPerHost(0)).is_empty());
    }
}
