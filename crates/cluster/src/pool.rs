//! The pre-warmed container pool (§3.2.3, "Pre-warmed Container Pool").
//!
//! The Container Prewarmer maintains warm containers per host so that
//! replica migrations (and, under the LCP baseline, ordinary cell requests)
//! skip cold container provisioning. Policies are pluggable; the default
//! keeps a minimum number of warm containers on every host.

use std::collections::HashMap;

use crate::host::HostId;

/// Pluggable policy deciding how many warm containers each host should hold.
pub trait PrewarmPolicy {
    /// Target number of warm containers for `host` given the current pool
    /// size on that host.
    fn target_for(&self, host: HostId, current: u32) -> u32;
}

/// The default policy: a fixed minimum per host (§3.2.3: "the Container
/// Prewarmer ensures that each server has a specified, minimum number of
/// pre-warmed containers available").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPerHost(pub u32);

impl PrewarmPolicy for MinPerHost {
    fn target_for(&self, _host: HostId, _current: u32) -> u32 {
        self.0
    }
}

/// Tracks warm containers per host.
#[derive(Debug, Default)]
pub struct PrewarmPool {
    warm: HashMap<HostId, u32>,
    /// Totals for instrumentation.
    acquired: u64,
    missed: u64,
}

impl PrewarmPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        PrewarmPool::default()
    }

    /// Number of warm containers on `host`.
    pub fn warm_on(&self, host: HostId) -> u32 {
        self.warm.get(&host).copied().unwrap_or(0)
    }

    /// Total warm containers across the cluster.
    pub fn total_warm(&self) -> u32 {
        self.warm.values().sum()
    }

    /// Takes a warm container from `host` if one is available. Returns
    /// whether the acquisition hit the pool (miss = cold start needed).
    pub fn acquire(&mut self, host: HostId) -> bool {
        match self.warm.get_mut(&host) {
            Some(n) if *n > 0 => {
                *n -= 1;
                self.acquired += 1;
                true
            }
            _ => {
                self.missed += 1;
                false
            }
        }
    }

    /// Returns a container to `host`'s pool (LCP returns containers after
    /// execution instead of terminating them).
    pub fn put(&mut self, host: HostId) {
        *self.warm.entry(host).or_insert(0) += 1;
    }

    /// Registers that a host left the cluster; its warm containers vanish.
    pub fn forget_host(&mut self, host: HostId) {
        self.warm.remove(&host);
    }

    /// Computes the warm-container deficit per host under `policy` for the
    /// given host set: `(host, missing_count)` pairs, sorted by host id.
    /// The caller provisions that many containers (asynchronously) and calls
    /// [`PrewarmPool::put`] as each becomes warm.
    pub fn deficits<P: PrewarmPolicy>(&self, hosts: &[HostId], policy: &P) -> Vec<(HostId, u32)> {
        let mut out: Vec<(HostId, u32)> = hosts
            .iter()
            .filter_map(|&h| {
                let current = self.warm_on(h);
                let target = policy.target_for(h, current);
                (target > current).then(|| (h, target - current))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// `(pool hits, pool misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_hits_and_misses() {
        let mut pool = PrewarmPool::new();
        pool.put(1);
        assert!(pool.acquire(1));
        assert!(!pool.acquire(1));
        assert!(!pool.acquire(2));
        assert_eq!(pool.stats(), (1, 2));
    }

    #[test]
    fn totals() {
        let mut pool = PrewarmPool::new();
        pool.put(1);
        pool.put(1);
        pool.put(2);
        assert_eq!(pool.warm_on(1), 2);
        assert_eq!(pool.total_warm(), 3);
        pool.forget_host(1);
        assert_eq!(pool.total_warm(), 1);
    }

    #[test]
    fn deficits_follow_policy() {
        let mut pool = PrewarmPool::new();
        pool.put(2);
        pool.put(2);
        let d = pool.deficits(&[1, 2, 3], &MinPerHost(2));
        assert_eq!(d, vec![(1, 2), (3, 2)]);
        // Satisfied hosts are omitted.
        assert!(pool.deficits(&[2], &MinPerHost(2)).is_empty());
        // Zero-minimum policy never asks for containers.
        assert!(pool.deficits(&[1, 2, 3], &MinPerHost(0)).is_empty());
    }
}
