//! Resource vocabulary: requests, capacities, and accounting arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A kernel's resource request (§3.2.1): CPUs in millicpus (1 millicpu =
/// 1/1000 vCPU), host memory in MB, whole GPUs, and VRAM in GB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ResourceRequest {
    /// CPU in millicpus.
    pub millicpus: u64,
    /// Host memory in megabytes.
    pub memory_mb: u64,
    /// Whole GPUs.
    pub gpus: u32,
    /// VRAM per GPU in gigabytes.
    pub vram_gb: u32,
}

impl ResourceRequest {
    /// Creates a request.
    pub fn new(millicpus: u64, memory_mb: u64, gpus: u32, vram_gb: u32) -> Self {
        ResourceRequest {
            millicpus,
            memory_mb,
            gpus,
            vram_gb,
        }
    }

    /// A typical 1-GPU training notebook.
    pub fn one_gpu() -> Self {
        ResourceRequest::new(4000, 16_384, 1, 16)
    }

    /// Whether this request needs any GPU at all.
    pub fn needs_gpu(&self) -> bool {
        self.gpus > 0
    }
}

impl fmt::Display for ResourceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}mcpu/{}MB/{}gpu/{}GB-vram",
            self.millicpus, self.memory_mb, self.gpus, self.vram_gb
        )
    }
}

/// A bundle of fungible resources, used both as capacity and as usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ResourceBundle {
    /// CPU in millicpus.
    pub millicpus: u64,
    /// Host memory in megabytes.
    pub memory_mb: u64,
    /// Whole GPUs.
    pub gpus: u32,
}

impl ResourceBundle {
    /// Creates a bundle.
    pub fn new(millicpus: u64, memory_mb: u64, gpus: u32) -> Self {
        ResourceBundle {
            millicpus,
            memory_mb,
            gpus,
        }
    }

    /// The shape of an 8-GPU p3.16xlarge-class server (64 vCPUs, 488 GB),
    /// matching the Adobe research cluster node type (§2.4).
    pub fn p3_16xlarge() -> Self {
        ResourceBundle::new(64_000, 499_712, 8)
    }

    /// The footprint a request occupies when **committed** (running a cell):
    /// all dimensions count.
    pub fn from_request(req: &ResourceRequest) -> Self {
        ResourceBundle::new(req.millicpus, req.memory_mb, req.gpus)
    }

    /// Componentwise `self >= other`.
    pub fn covers(&self, other: &ResourceBundle) -> bool {
        self.millicpus >= other.millicpus
            && self.memory_mb >= other.memory_mb
            && self.gpus >= other.gpus
    }

    /// Componentwise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceBundle) -> ResourceBundle {
        ResourceBundle::new(
            self.millicpus.saturating_sub(other.millicpus),
            self.memory_mb.saturating_sub(other.memory_mb),
            self.gpus.saturating_sub(other.gpus),
        )
    }

    /// Whether all components are zero.
    pub fn is_zero(&self) -> bool {
        *self == ResourceBundle::default()
    }
}

impl Add for ResourceBundle {
    type Output = ResourceBundle;

    fn add(self, rhs: ResourceBundle) -> ResourceBundle {
        ResourceBundle::new(
            self.millicpus + rhs.millicpus,
            self.memory_mb + rhs.memory_mb,
            self.gpus + rhs.gpus,
        )
    }
}

impl AddAssign for ResourceBundle {
    fn add_assign(&mut self, rhs: ResourceBundle) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceBundle {
    type Output = ResourceBundle;

    /// # Panics
    ///
    /// Panics in debug builds if any component underflows.
    fn sub(self, rhs: ResourceBundle) -> ResourceBundle {
        ResourceBundle::new(
            self.millicpus - rhs.millicpus,
            self.memory_mb - rhs.memory_mb,
            self.gpus - rhs.gpus,
        )
    }
}

impl SubAssign for ResourceBundle {
    fn sub_assign(&mut self, rhs: ResourceBundle) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ResourceBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}mcpu/{}MB/{}gpu",
            self.millicpus, self.memory_mb, self.gpus
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_basics() {
        let r = ResourceRequest::one_gpu();
        assert!(r.needs_gpu());
        assert!(!ResourceRequest::new(100, 100, 0, 0).needs_gpu());
        assert!(format!("{r}").contains("1gpu"));
    }

    #[test]
    fn bundle_arithmetic() {
        let a = ResourceBundle::new(1000, 2000, 2);
        let b = ResourceBundle::new(500, 500, 1);
        assert_eq!(a + b, ResourceBundle::new(1500, 2500, 3));
        assert_eq!(a - b, ResourceBundle::new(500, 1500, 1));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn covers_is_componentwise() {
        let cap = ResourceBundle::p3_16xlarge();
        assert!(cap.covers(&ResourceBundle::new(64_000, 499_712, 8)));
        assert!(!cap.covers(&ResourceBundle::new(64_001, 1, 1)));
        assert!(!cap.covers(&ResourceBundle::new(1, 1, 9)));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = ResourceBundle::new(10, 10, 1);
        let b = ResourceBundle::new(100, 5, 2);
        assert_eq!(a.saturating_sub(&b), ResourceBundle::new(0, 5, 0));
    }

    #[test]
    fn from_request_copies_dimensions() {
        let r = ResourceRequest::new(4000, 8192, 2, 16);
        let b = ResourceBundle::from_request(&r);
        assert_eq!(b, ResourceBundle::new(4000, 8192, 2));
    }

    #[test]
    fn zero_check() {
        assert!(ResourceBundle::default().is_zero());
        assert!(!ResourceBundle::new(0, 0, 1).is_zero());
    }
}
