//! Container lifecycle state machine.
//!
//! Kernel replicas run in containers whose lifecycle the Local Scheduler
//! manages (§3.1): provisioning → warm (pre-warmed pool) or registering →
//! running → terminated. Transitions are checked so accounting bugs
//! (double-starting a container, running a terminated one) fail loudly.

use crate::host::HostId;

/// Lifecycle states of a kernel-replica container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerState {
    /// Image pull + runtime start in progress.
    Provisioning,
    /// Started with a pre-initialized runtime, parked in the pre-warm pool.
    Warm,
    /// Registering with its Local Scheduler (Fig. 4 step 4).
    Registering,
    /// Hosting a live kernel replica.
    Running,
    /// Terminated; resources reclaimed.
    Terminated,
}

impl std::fmt::Display for ContainerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerState::Provisioning => write!(f, "provisioning"),
            ContainerState::Warm => write!(f, "warm"),
            ContainerState::Registering => write!(f, "registering"),
            ContainerState::Running => write!(f, "running"),
            ContainerState::Terminated => write!(f, "terminated"),
        }
    }
}

/// An invalid lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// State the container was in.
    pub from: ContainerState,
    /// State the caller requested.
    pub to: ContainerState,
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid container transition {} -> {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for TransitionError {}

/// A kernel-replica container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    id: u64,
    host: HostId,
    state: ContainerState,
    /// Creation time (µs of virtual time), for age-based pool policies.
    created_us: u64,
}

impl Container {
    /// Starts provisioning a container on `host` at `now_us`.
    pub fn provision(id: u64, host: HostId, now_us: u64) -> Self {
        Container {
            id,
            host,
            state: ContainerState::Provisioning,
            created_us: now_us,
        }
    }

    /// Container id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Hosting server.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Creation time in microseconds.
    pub fn created_us(&self) -> u64 {
        self.created_us
    }

    /// Age at `now_us`.
    pub fn age_us(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(self.created_us)
    }

    fn transition(
        &mut self,
        to: ContainerState,
        allowed_from: &[ContainerState],
    ) -> Result<(), TransitionError> {
        if allowed_from.contains(&self.state) {
            self.state = to;
            Ok(())
        } else {
            Err(TransitionError {
                from: self.state,
                to,
            })
        }
    }

    /// Provisioning finished into the pre-warm pool.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] unless currently `Provisioning`.
    pub fn into_warm_pool(&mut self) -> Result<(), TransitionError> {
        self.transition(ContainerState::Warm, &[ContainerState::Provisioning])
    }

    /// Assigned to a kernel replica: begins registration with the Local
    /// Scheduler. Valid from `Provisioning` (cold path) or `Warm`
    /// (pool hit).
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] from any other state.
    pub fn begin_registration(&mut self) -> Result<(), TransitionError> {
        self.transition(
            ContainerState::Registering,
            &[ContainerState::Provisioning, ContainerState::Warm],
        )
    }

    /// Registration acknowledged; the replica is live.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] unless currently `Registering`.
    pub fn mark_running(&mut self) -> Result<(), TransitionError> {
        self.transition(ContainerState::Running, &[ContainerState::Registering])
    }

    /// Returns a finished container to the pool (the LCP baseline reuses
    /// containers instead of terminating them).
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] unless currently `Running`.
    pub fn return_to_pool(&mut self) -> Result<(), TransitionError> {
        self.transition(ContainerState::Warm, &[ContainerState::Running])
    }

    /// Terminates the container. Valid from every state except
    /// `Terminated` (termination is idempotent-hostile by design: a double
    /// terminate is an accounting bug).
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] if already terminated.
    pub fn terminate(&mut self) -> Result<(), TransitionError> {
        self.transition(
            ContainerState::Terminated,
            &[
                ContainerState::Provisioning,
                ContainerState::Warm,
                ContainerState::Registering,
                ContainerState::Running,
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_path_lifecycle() {
        let mut c = Container::provision(1, 7, 1000);
        assert_eq!(c.state(), ContainerState::Provisioning);
        assert_eq!(c.host(), 7);
        c.begin_registration().unwrap();
        c.mark_running().unwrap();
        assert_eq!(c.state(), ContainerState::Running);
        c.terminate().unwrap();
        assert_eq!(c.state(), ContainerState::Terminated);
    }

    #[test]
    fn warm_path_lifecycle() {
        let mut c = Container::provision(2, 7, 0);
        c.into_warm_pool().unwrap();
        assert_eq!(c.state(), ContainerState::Warm);
        c.begin_registration().unwrap();
        c.mark_running().unwrap();
        // LCP: back to the pool after the cell.
        c.return_to_pool().unwrap();
        assert_eq!(c.state(), ContainerState::Warm);
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut c = Container::provision(3, 7, 0);
        assert!(c.mark_running().is_err());
        assert!(c.return_to_pool().is_err());
        c.begin_registration().unwrap();
        assert!(c.into_warm_pool().is_err());
        c.mark_running().unwrap();
        c.terminate().unwrap();
        let err = c.terminate().unwrap_err();
        assert_eq!(err.from, ContainerState::Terminated);
        assert!(err.to_string().contains("terminated"));
    }

    #[test]
    fn age_tracking() {
        let c = Container::provision(4, 7, 1_000_000);
        assert_eq!(c.age_us(2_500_000), 1_500_000);
        assert_eq!(c.age_us(500_000), 0);
        assert_eq!(c.created_us(), 1_000_000);
        assert_eq!(c.id(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(ContainerState::Warm.to_string(), "warm");
        assert_eq!(ContainerState::Running.to_string(), "running");
    }
}
