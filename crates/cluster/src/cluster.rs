//! The cluster: a collection of hosts plus the cluster-wide accounting the
//! scheduler and autoscaler read.

use crate::host::{Host, HostId};
use crate::resources::{ResourceBundle, ResourceRequest};

/// The fleet of GPU servers.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    hosts: Vec<Host>,
    next_host_id: HostId,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Creates a cluster of `n` identical hosts.
    pub fn with_hosts(n: usize, capacity: ResourceBundle) -> Self {
        let mut c = Cluster::new();
        for _ in 0..n {
            c.add_host(capacity);
        }
        c
    }

    /// Adds a host, returning its id.
    pub fn add_host(&mut self, capacity: ResourceBundle) -> HostId {
        let id = self.next_host_id;
        self.next_host_id += 1;
        self.hosts.push(Host::new(id, capacity));
        id
    }

    /// Removes a host (only sensible when it is idle; the autoscaler drains
    /// first). Returns the host if it existed.
    pub fn remove_host(&mut self, id: HostId) -> Option<Host> {
        let idx = self.hosts.iter().position(|h| h.id() == id)?;
        Some(self.hosts.remove(idx))
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable host lookup.
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut Host> {
        self.hosts.iter_mut().find(|h| h.id() == id)
    }

    /// Shared host lookup.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.iter().find(|h| h.id() == id)
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total GPUs across all hosts (`ΣG`).
    pub fn total_gpus(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| u64::from(h.capacity().gpus))
            .sum()
    }

    /// Total subscribed GPUs across all hosts (`ΣS`).
    pub fn total_subscribed_gpus(&self) -> u64 {
        self.hosts.iter().map(Host::subscribed_gpus).sum()
    }

    /// Total GPUs exclusively committed to actively-executing replicas
    /// (`ΣC` in the autoscaler, §3.4.2).
    pub fn total_committed_gpus(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| u64::from(h.committed_gpus()))
            .sum()
    }

    /// The dynamic cluster-wide SR limit `ΣS / (ΣG · R)` (§3.4.1).
    ///
    /// Returns infinity for an empty/GPU-less cluster so that placement
    /// decisions degrade to capacity checks only.
    pub fn sr_limit(&self, replication_factor: u32) -> f64 {
        let denom = self.total_gpus() * u64::from(replication_factor.max(1));
        if denom == 0 {
            return f64::INFINITY;
        }
        self.total_subscribed_gpus() as f64 / denom as f64
    }

    /// Hosts that could host a new replica subscription of `request`,
    /// ranked by §3.4.1's default policy: hosts whose post-placement SR
    /// stays within `sr_cap` come first (most idle GPUs, then lowest SR),
    /// followed by over-cap hosts ordered by ascending SR. The SR cap is a
    /// *preference* — "the server is rejected in favor of another" — so
    /// when demand outruns supply the cluster oversubscribes beyond the cap
    /// (Fig. 10 shows the cluster-wide SR reaching 3.0) while the
    /// auto-scaler catches up.
    ///
    /// `sr_cap` is typically `max(cluster sr_limit, 1.0)` so an empty
    /// cluster can still accept its first kernels.
    pub fn subscription_candidates(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Vec<HostId> {
        let post_sr = |h: &Host| {
            (h.subscribed_gpus() + u64::from(request.gpus)) as f64
                / (u64::from(h.capacity().gpus.max(1)) * u64::from(replication_factor.max(1)))
                    as f64
        };
        let mut candidates: Vec<&Host> = self
            .hosts
            .iter()
            .filter(|h| !h.is_draining())
            .filter(|h| h.capacity().covers(&ResourceBundle::from_request(request)))
            .collect();
        candidates.sort_by(|a, b| {
            let a_over = request.gpus > 0 && post_sr(a) > sr_cap;
            let b_over = request.gpus > 0 && post_sr(b) > sr_cap;
            a_over
                .cmp(&b_over)
                .then(b.idle_gpus().cmp(&a.idle_gpus()))
                .then(
                    a.subscription_ratio(replication_factor)
                        .partial_cmp(&b.subscription_ratio(replication_factor))
                        .expect("SR is finite"),
                )
                .then(a.id().cmp(&b.id()))
        });
        candidates.into_iter().map(Host::id).collect()
    }

    /// Hosts with zero replicas and zero commitments — candidates for
    /// scale-in (§3.4.2: "idle servers are those with no active training
    /// kernel replicas").
    pub fn idle_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.replica_count() == 0 && h.active_commitments() == 0)
            .map(Host::id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_req(gpus: u32) -> ResourceRequest {
        ResourceRequest::new(4000, 16_384, gpus, 16)
    }

    #[test]
    fn add_and_remove_hosts() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_gpus(), 24);
        let removed = c.remove_host(1).unwrap();
        assert_eq!(removed.id(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.remove_host(99).is_none());
        // Ids are never reused.
        let id = c.add_host(ResourceBundle::p3_16xlarge());
        assert_eq!(id, 3);
    }

    #[test]
    fn totals_track_subscriptions_and_commits() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        assert_eq!(c.total_subscribed_gpus(), 6);
        c.host_mut(0).unwrap().commit(7, &gpu_req(4)).unwrap();
        assert_eq!(c.total_committed_gpus(), 4);
        // SR limit: 6 / (16 * 3).
        assert!((c.sr_limit(3) - 6.0 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_sr_limit_is_infinite() {
        let c = Cluster::new();
        assert!(c.sr_limit(3).is_infinite());
    }

    #[test]
    fn candidates_prefer_least_loaded() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0 busiest, host 2 idle.
        c.host_mut(0).unwrap().commit(1, &gpu_req(6)).unwrap();
        c.host_mut(1).unwrap().commit(2, &gpu_req(3)).unwrap();
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![2, 1, 0]);
    }

    #[test]
    fn candidates_prefer_hosts_within_sr_cap() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        // Host 0 heavily subscribed: S = 24 → SR = 1.0 at R = 3, so another
        // 4-GPU subscription would push it over the cap.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        let ranked = c.subscription_candidates(&gpu_req(4), 3, 1.0);
        assert_eq!(
            ranked,
            vec![1, 0],
            "saturated host ranked last, not dropped"
        );
        // CPU-only kernels are exempt from the SR ordering.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        assert_eq!(c.subscription_candidates(&cpu, 3, 1.0).len(), 2);
    }

    #[test]
    fn draining_hosts_excluded() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().set_draining(true);
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![1]);
    }

    #[test]
    fn oversized_requests_have_no_candidates() {
        let c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        let giant = ResourceRequest::new(1000, 1024, 9, 16);
        assert!(c.subscription_candidates(&giant, 3, 10.0).is_empty());
    }

    #[test]
    fn idle_host_detection() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(1));
        assert_eq!(c.idle_hosts(), vec![1]);
    }
}
