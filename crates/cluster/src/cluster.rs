//! The cluster: a collection of hosts plus the cluster-wide accounting the
//! scheduler and autoscaler read.

use crate::host::{Host, HostId};
use crate::resources::{ResourceBundle, ResourceRequest};

/// Placement candidates screened by one shared viability rule (capacity
/// covers the request, host not draining), split by the dynamic SR cap
/// (§3.4.1). The cap is a *preference*: `over_cap` hosts are still usable
/// as a last resort — "the server is rejected in favor of another" — so
/// every placement policy ranks `within_cap` hosts ahead of `over_cap`
/// hosts and orders *within* each segment by its own criterion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Viability {
    /// Hosts whose post-placement SR stays at or below the cap, ascending
    /// by host id.
    pub within_cap: Vec<HostId>,
    /// Hosts the SR cap forbids (usable only when nothing better exists),
    /// ascending by host id.
    pub over_cap: Vec<HostId>,
}

impl Viability {
    /// Total viable hosts across both segments.
    pub fn len(&self) -> usize {
        self.within_cap.len() + self.over_cap.len()
    }

    /// Whether no host is viable at all.
    pub fn is_empty(&self) -> bool {
        self.within_cap.is_empty() && self.over_cap.is_empty()
    }

    /// All viable hosts, preferred segment first.
    pub fn into_ranked(self) -> Vec<HostId> {
        let mut out = self.within_cap;
        out.extend(self.over_cap);
        out
    }
}

/// The fleet of GPU servers.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    hosts: Vec<Host>,
    next_host_id: HostId,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Creates a cluster of `n` identical hosts.
    pub fn with_hosts(n: usize, capacity: ResourceBundle) -> Self {
        let mut c = Cluster::new();
        for _ in 0..n {
            c.add_host(capacity);
        }
        c
    }

    /// Creates a heterogeneous cluster from `(shape, count)` pairs, in
    /// order — e.g. a fleet mixing 8-GPU trainers with smaller 4-GPU
    /// inference boxes. Host ids are assigned in pair order.
    pub fn with_host_mix(mix: &[(ResourceBundle, u32)]) -> Self {
        let mut c = Cluster::new();
        for &(shape, count) in mix {
            for _ in 0..count {
                c.add_host(shape);
            }
        }
        c
    }

    /// Adds a host, returning its id.
    pub fn add_host(&mut self, capacity: ResourceBundle) -> HostId {
        let id = self.next_host_id;
        self.next_host_id += 1;
        self.hosts.push(Host::new(id, capacity));
        id
    }

    /// Removes a host (only sensible when it is idle; the autoscaler drains
    /// first). Returns the host if it existed.
    pub fn remove_host(&mut self, id: HostId) -> Option<Host> {
        let idx = self.hosts.iter().position(|h| h.id() == id)?;
        Some(self.hosts.remove(idx))
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable host lookup.
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut Host> {
        self.hosts.iter_mut().find(|h| h.id() == id)
    }

    /// Shared host lookup.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.iter().find(|h| h.id() == id)
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total GPUs across all hosts (`ΣG`).
    pub fn total_gpus(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| u64::from(h.capacity().gpus))
            .sum()
    }

    /// Total subscribed GPUs across all hosts (`ΣS`).
    pub fn total_subscribed_gpus(&self) -> u64 {
        self.hosts.iter().map(Host::subscribed_gpus).sum()
    }

    /// Total GPUs exclusively committed to actively-executing replicas
    /// (`ΣC` in the autoscaler, §3.4.2).
    pub fn total_committed_gpus(&self) -> u64 {
        self.hosts
            .iter()
            .map(|h| u64::from(h.committed_gpus()))
            .sum()
    }

    /// The dynamic cluster-wide SR limit `ΣS / (ΣG · R)` (§3.4.1).
    ///
    /// Returns infinity for an empty/GPU-less cluster so that placement
    /// decisions degrade to capacity checks only.
    pub fn sr_limit(&self, replication_factor: u32) -> f64 {
        let denom = self.total_gpus() * u64::from(replication_factor.max(1));
        if denom == 0 {
            return f64::INFINITY;
        }
        self.total_subscribed_gpus() as f64 / denom as f64
    }

    /// Hosts that could host a new replica subscription of `request`,
    /// ranked by §3.4.1's default policy: hosts whose post-placement SR
    /// stays within `sr_cap` come first (most idle GPUs, then lowest SR),
    /// followed by over-cap hosts ordered by ascending SR. The SR cap is a
    /// *preference* — "the server is rejected in favor of another" — so
    /// when demand outruns supply the cluster oversubscribes beyond the cap
    /// (Fig. 10 shows the cluster-wide SR reaching 3.0) while the
    /// auto-scaler catches up.
    ///
    /// `sr_cap` is typically `max(cluster sr_limit, 1.0)` so an empty
    /// cluster can still accept its first kernels.
    pub fn subscription_candidates(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Vec<HostId> {
        let viable = self.viable_hosts(request, replication_factor, sr_cap);
        // Decorate each segment with its sort key via a one-pass index
        // (linear host lookups inside the sort would be quadratic).
        let by_id: std::collections::HashMap<HostId, &Host> =
            self.hosts.iter().map(|h| (h.id(), h)).collect();
        let least_loaded_first = |ids: Vec<HostId>| {
            let mut keyed: Vec<(u32, f64, HostId)> = ids
                .into_iter()
                .map(|id| {
                    let h = by_id[&id];
                    (h.idle_gpus(), h.subscription_ratio(replication_factor), id)
                })
                .collect();
            keyed.sort_by(|a, b| {
                b.0.cmp(&a.0)
                    .then(a.1.partial_cmp(&b.1).expect("SR is finite"))
                    .then(a.2.cmp(&b.2))
            });
            keyed.into_iter().map(|(_, _, id)| id)
        };
        let Viability {
            within_cap,
            over_cap,
        } = viable;
        let mut out: Vec<HostId> = least_loaded_first(within_cap).collect();
        out.extend(least_loaded_first(over_cap));
        out
    }

    /// The single viability rule every placement policy shares: hosts whose
    /// *capacity* covers the request and that are not draining, split into
    /// those the SR cap allows and those it forbids (§3.4.1). CPU-only
    /// requests never count against the cap. Segments are ascending by
    /// host id; policies order within them.
    pub fn viable_hosts(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Viability {
        let post_sr = |h: &Host| {
            (h.subscribed_gpus() + u64::from(request.gpus)) as f64
                / (u64::from(h.capacity().gpus.max(1)) * u64::from(replication_factor.max(1)))
                    as f64
        };
        let mut viable = Viability::default();
        for h in &self.hosts {
            if h.is_draining() || !h.capacity().covers(&ResourceBundle::from_request(request)) {
                continue;
            }
            if request.gpus > 0 && post_sr(h) > sr_cap {
                viable.over_cap.push(h.id());
            } else {
                viable.within_cap.push(h.id());
            }
        }
        // `hosts` is ascending by id (ids are never reused and grow
        // monotonically), so the segments inherit that order.
        viable
    }

    /// The fleet's shape census: distinct host shapes with their counts,
    /// ascending by `(gpus, millicpus, memory_mb)` — the catalog the
    /// platform hands a shape-aware elasticity policy, so "first covering
    /// shape" means "cheapest covering shape".
    pub fn shape_census(&self) -> Vec<(ResourceBundle, u32)> {
        let mut census: Vec<(ResourceBundle, u32)> = Vec::new();
        for h in &self.hosts {
            let shape = h.capacity();
            match census.iter_mut().find(|(s, _)| *s == shape) {
                Some(slot) => slot.1 += 1,
                None => census.push((shape, 1)),
            }
        }
        census.sort_by_key(|(s, _)| (s.gpus, s.millicpus, s.memory_mb));
        census
    }

    /// Hosts with zero replicas and zero commitments — candidates for
    /// scale-in (§3.4.2: "idle servers are those with no active training
    /// kernel replicas").
    pub fn idle_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.replica_count() == 0 && h.active_commitments() == 0)
            .map(Host::id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_req(gpus: u32) -> ResourceRequest {
        ResourceRequest::new(4000, 16_384, gpus, 16)
    }

    #[test]
    fn add_and_remove_hosts() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_gpus(), 24);
        let removed = c.remove_host(1).unwrap();
        assert_eq!(removed.id(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.remove_host(99).is_none());
        // Ids are never reused.
        let id = c.add_host(ResourceBundle::p3_16xlarge());
        assert_eq!(id, 3);
    }

    #[test]
    fn totals_track_subscriptions_and_commits() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        assert_eq!(c.total_subscribed_gpus(), 6);
        c.host_mut(0).unwrap().commit(7, &gpu_req(4)).unwrap();
        assert_eq!(c.total_committed_gpus(), 4);
        // SR limit: 6 / (16 * 3).
        assert!((c.sr_limit(3) - 6.0 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_sr_limit_is_infinite() {
        let c = Cluster::new();
        assert!(c.sr_limit(3).is_infinite());
    }

    #[test]
    fn candidates_prefer_least_loaded() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0 busiest, host 2 idle.
        c.host_mut(0).unwrap().commit(1, &gpu_req(6)).unwrap();
        c.host_mut(1).unwrap().commit(2, &gpu_req(3)).unwrap();
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![2, 1, 0]);
    }

    #[test]
    fn candidates_prefer_hosts_within_sr_cap() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        // Host 0 heavily subscribed: S = 24 → SR = 1.0 at R = 3, so another
        // 4-GPU subscription would push it over the cap.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        let ranked = c.subscription_candidates(&gpu_req(4), 3, 1.0);
        assert_eq!(
            ranked,
            vec![1, 0],
            "saturated host ranked last, not dropped"
        );
        // CPU-only kernels are exempt from the SR ordering.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        assert_eq!(c.subscription_candidates(&cpu, 3, 1.0).len(), 2);
    }

    #[test]
    fn draining_hosts_excluded() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().set_draining(true);
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![1]);
    }

    #[test]
    fn oversized_requests_have_no_candidates() {
        let c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        let giant = ResourceRequest::new(1000, 1024, 9, 16);
        assert!(c.subscription_candidates(&giant, 3, 10.0).is_empty());
    }

    #[test]
    fn viable_hosts_splits_on_sr_cap() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0: S = 24 → another 4-GPU subscription exceeds SR 1.0 at R=3.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        c.host_mut(2).unwrap().set_draining(true);
        let v = c.viable_hosts(&gpu_req(4), 3, 1.0);
        assert_eq!(v.within_cap, vec![1]);
        assert_eq!(v.over_cap, vec![0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.into_ranked(), vec![1, 0]);
        // CPU-only requests are exempt from the cap.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        let v = c.viable_hosts(&cpu, 3, 1.0);
        assert_eq!(v.within_cap, vec![0, 1]);
        assert!(v.over_cap.is_empty());
    }

    #[test]
    fn heterogeneous_mix_builds_in_order() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 2), (small, 3)]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.total_gpus(), 2 * 8 + 3 * 4);
        assert_eq!(c.host(0).unwrap().capacity().gpus, 8);
        assert_eq!(c.host(4).unwrap().capacity().gpus, 4);
    }

    #[test]
    fn shape_census_counts_distinct_shapes() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let mut c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 2), (small, 3)]);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3), (ResourceBundle::p3_16xlarge(), 2)],
            "ascending by gpus"
        );
        c.remove_host(0);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3), (ResourceBundle::p3_16xlarge(), 1)]
        );
        assert!(Cluster::new().shape_census().is_empty());
    }

    #[test]
    fn idle_host_detection() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(1));
        assert_eq!(c.idle_hosts(), vec![1]);
    }
}
