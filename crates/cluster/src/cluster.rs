//! The cluster: a collection of hosts plus the cluster-wide accounting the
//! scheduler and autoscaler read.
//!
//! # The incremental host index
//!
//! Placement runs once per kernel creation and commit/release once per
//! cell, so everything the scheduler reads on that path is served from
//! state maintained *incrementally* instead of being re-derived per query:
//!
//! * the host slab is ascending by id (ids are never reused), so host
//!   lookup is a binary search instead of a linear scan;
//! * `ΣG`/`ΣS`/`ΣC` fleet totals are cached and updated in place by the
//!   cluster-level mutators ([`Cluster::subscribe`], [`Cluster::try_commit`],
//!   [`Cluster::release`], …);
//! * the shape census is a persistent sorted index updated on host
//!   add/remove, not an O(hosts × shapes) scan per query;
//! * a capacity-bucketed placement index (`HostIndex`, private) keeps
//!   every host ordered by the exact keys the placement policies and the
//!   commit-side scans sort by, so top-k host selection is O(log hosts +
//!   k) instead of an O(hosts) slab rescan per decision (see
//!   [`Cluster::rank_least_loaded_top`] and friends).
//!
//! [`Cluster::host_mut`] still hands out raw `&mut Host` access (tests and
//! ad-hoc tooling mutate accounting directly through it); doing so marks
//! the cached totals *and the placement index* dirty and they are
//! transparently recomputed on the next read or typed mutation, so the
//! fast path stays exact without constraining the slow one.

use std::cell::{Cell, Ref, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use crate::host::{Host, HostId, OwnerId};
use crate::resources::{ResourceBundle, ResourceRequest};

/// Placement candidates screened by one shared viability rule (capacity
/// covers the request, host not draining), split by the dynamic SR cap
/// (§3.4.1). The cap is a *preference*: `over_cap` hosts are still usable
/// as a last resort — "the server is rejected in favor of another" — so
/// every placement policy ranks `within_cap` hosts ahead of `over_cap`
/// hosts and orders *within* each segment by its own criterion.
///
/// The buffers are reusable: [`Cluster::viable_hosts_into`] clears and
/// refills them, so a caller that owns one `Viability` screens every
/// placement without allocating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Viability {
    /// Hosts whose post-placement SR stays at or below the cap, ascending
    /// by host id.
    pub within_cap: Vec<HostId>,
    /// Hosts the SR cap forbids (usable only when nothing better exists),
    /// ascending by host id.
    pub over_cap: Vec<HostId>,
}

impl Viability {
    /// Total viable hosts across both segments.
    pub fn len(&self) -> usize {
        self.within_cap.len() + self.over_cap.len()
    }

    /// Whether no host is viable at all.
    pub fn is_empty(&self) -> bool {
        self.within_cap.is_empty() && self.over_cap.is_empty()
    }

    /// All viable hosts, preferred segment first.
    pub fn into_ranked(self) -> Vec<HostId> {
        let mut out = self.within_cap;
        out.extend(self.over_cap);
        out
    }

    /// Empties both segments (keeping their capacity for reuse).
    pub fn clear(&mut self) {
        self.within_cap.clear();
        self.over_cap.clear();
    }
}

/// Reusable scratch for the least-loaded ranking
/// ([`Cluster::subscription_candidates_into`]): decorated `(idle GPUs,
/// SR, id)` keys per SR-cap segment, captured in the same pass as the
/// viability screen so ranking performs no per-host lookups at all.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    within: Vec<(u32, f64, HostId)>,
    over: Vec<(u32, f64, HostId)>,
}

/// The sort key of one census entry; covers every [`ResourceBundle`]
/// field, so it totally orders shapes.
fn census_key(shape: &ResourceBundle) -> (u32, u64, u64) {
    (shape.gpus, shape.millicpus, shape.memory_mb)
}

/// Per-shape slice of the placement index. All hosts in a class share one
/// capacity [`ResourceBundle`], hence one viability verdict per request
/// and one SR denominator — which is what makes the integer BTree keys
/// below order-equivalent to the float sort keys the scan path computes.
#[derive(Debug, Clone)]
struct ShapeClass {
    shape: ResourceBundle,
    /// idle GPUs → `(subscribed, id)`: walking buckets in descending idle
    /// order and each bucket ascending yields exactly the least-loaded
    /// order `(idle desc, SR asc, id asc)` within the class.
    by_idle_sub: BTreeMap<u32, BTreeSet<(u64, HostId)>>,
    /// `(subscribed, committed, id)`: reverse iteration yields exactly
    /// the bin-packing order `(S desc, C desc, id desc)` within the class.
    by_sub: BTreeSet<(u64, u64, HostId)>,
    /// id → subscribed GPUs: in-order iteration is exactly the
    /// round-robin rotation order within the class, with the subscription
    /// level at hand for the SR-cap check.
    by_id: BTreeMap<HostId, u64>,
    /// Live (non-draining) hosts in this class.
    len: usize,
}

impl ShapeClass {
    fn new(shape: ResourceBundle) -> Self {
        ShapeClass {
            shape,
            by_idle_sub: BTreeMap::new(),
            by_sub: BTreeSet::new(),
            by_id: BTreeMap::new(),
            len: 0,
        }
    }
}

/// Capacity-bucketed placement index: the ordered structures behind the
/// sub-linear `rank_*_top` / `best_commit_host*` queries. Maintained
/// incrementally by the typed cluster mutators (unlink → apply → link);
/// raw [`Cluster::host_mut`] access marks it dirty and the next query
/// rebuilds it from the slab.
#[derive(Debug, Clone, Default)]
struct HostIndex {
    /// Per-shape structures over *non-draining* hosts (the placement
    /// viability screen excludes draining), ascending by `census_key`.
    classes: Vec<ShapeClass>,
    /// Every host — draining included — keyed by `(idle GPUs, id)`; the
    /// commit-side baseline scans (reservation/batch/LCP) do not filter
    /// on draining, and migration filters it inline.
    by_idle: BTreeSet<(u32, HostId)>,
    /// Set by raw [`Cluster::host_mut`] access; rebuilt lazily.
    dirty: bool,
}

impl HostIndex {
    /// Re-derives every structure from the slab (the self-heal after raw
    /// `host_mut` access).
    fn rebuild(&mut self, hosts: &[Host]) {
        self.classes.clear();
        self.by_idle.clear();
        for h in hosts {
            self.link(h);
        }
        self.dirty = false;
    }

    fn class_position(&self, shape: &ResourceBundle) -> Result<usize, usize> {
        self.classes
            .binary_search_by_key(&census_key(shape), |c| census_key(&c.shape))
    }

    /// Inserts `h` (in its current state) into every structure.
    fn link(&mut self, h: &Host) {
        self.by_idle.insert((h.idle_gpus(), h.id()));
        if h.is_draining() {
            return;
        }
        let shape = h.capacity();
        let slot = match self.class_position(&shape) {
            Ok(i) => i,
            Err(i) => {
                self.classes.insert(i, ShapeClass::new(shape));
                i
            }
        };
        let class = &mut self.classes[slot];
        class
            .by_idle_sub
            .entry(h.idle_gpus())
            .or_default()
            .insert((h.subscribed_gpus(), h.id()));
        class
            .by_sub
            .insert((h.subscribed_gpus(), u64::from(h.committed_gpus()), h.id()));
        class.by_id.insert(h.id(), h.subscribed_gpus());
        class.len += 1;
    }

    /// Removes `h` (in its current state) from every structure; the exact
    /// inverse of [`HostIndex::link`].
    fn unlink(&mut self, h: &Host) {
        self.by_idle.remove(&(h.idle_gpus(), h.id()));
        if h.is_draining() {
            return;
        }
        let slot = self
            .class_position(&h.capacity())
            .expect("indexed host's shape class exists");
        let class = &mut self.classes[slot];
        let bucket = class
            .by_idle_sub
            .get_mut(&h.idle_gpus())
            .expect("indexed host's idle bucket exists");
        bucket.remove(&(h.subscribed_gpus(), h.id()));
        if bucket.is_empty() {
            class.by_idle_sub.remove(&h.idle_gpus());
        }
        class
            .by_sub
            .remove(&(h.subscribed_gpus(), u64::from(h.committed_gpus()), h.id()));
        class.by_id.remove(&h.id());
        class.len -= 1;
        if class.len == 0 {
            self.classes.remove(slot);
        }
    }
}

/// The subscription ratio a host of `shape` with `subscribed` GPUs
/// reports — [`Host::subscription_ratio`] reproduced bit for bit from the
/// index keys.
fn class_sr(shape: ResourceBundle, replication_factor: u32, subscribed: u64) -> f64 {
    let denom = u64::from(shape.gpus) * u64::from(replication_factor.max(1));
    if denom == 0 {
        return 0.0;
    }
    subscribed as f64 / denom as f64
}

/// Largest subscribed-GPU count that keeps a host of `shape` within
/// `sr_cap` after accepting `request` — the scan path's
/// `post_sr(h) > sr_cap` predicate, which is monotone in `S`, so the
/// within-cap hosts of a class form a contiguous `(S, …)` prefix in the
/// BTree keys. `Some(u64::MAX)` when no subscription level is over the
/// cap (always the case for CPU-only requests, which are exempt), `None`
/// when even `S = 0` is over.
fn class_cap(
    request: &ResourceRequest,
    shape: ResourceBundle,
    replication_factor: u32,
    sr_cap: f64,
) -> Option<u64> {
    if request.gpus == 0 {
        return Some(u64::MAX);
    }
    let denom = (u64::from(shape.gpus.max(1)) * u64::from(replication_factor.max(1))) as f64;
    let g = u128::from(request.gpus);
    // u128 keeps the probe addition overflow-free; for any subscription
    // level a real host can hold the sum fits u64 and the f64 conversion
    // is identical to the scan's.
    let within = |s: u64| ((u128::from(s) + g) as f64) / denom <= sr_cap;
    if !within(0) {
        return None;
    }
    if within(u64::MAX) {
        return Some(u64::MAX);
    }
    let (mut lo, mut hi) = (0u64, u64::MAX); // invariant: within(lo), !within(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if within(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// How one shape class's members fall against the SR cap for a request:
/// entirely within, entirely over, or genuinely split at a subscribed-GPU
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CapSplit {
    /// Every member's post-placement SR stays at or below the cap.
    AllWithin,
    /// Every member is over the cap.
    AllOver,
    /// Members at or below the threshold are within; the rest are over.
    Mixed(u64),
}

/// Classifies `class` against the [`class_cap`] threshold using only the
/// BTree boundary keys — O(log) for the homogeneous verdicts every
/// same-load fleet hits, which is what keeps the round-robin walk and the
/// viability split flat when *all* hosts are over the cap.
fn cap_split(class: &ShapeClass, cap: Option<u64>) -> CapSplit {
    match cap {
        Some(u64::MAX) => CapSplit::AllWithin,
        None => CapSplit::AllOver,
        Some(t) => match (class.by_sub.first(), class.by_sub.last()) {
            (_, Some(&(max_s, _, _))) if max_s <= t => CapSplit::AllWithin,
            (Some(&(min_s, _, _)), _) if min_s > t => CapSplit::AllOver,
            _ => CapSplit::Mixed(t),
        },
    }
}

/// Appends up to `take` host ids from `class` in ascending-id order over
/// `range` (one rotation phase), keeping only hosts on the requested side
/// of the cap split. Homogeneous classes answer in O(log + take); only a
/// genuinely `Mixed` class walks members past the threshold check.
fn gather_round_robin(
    class: &ShapeClass,
    split: CapSplit,
    over: bool,
    range: (Bound<HostId>, Bound<HostId>),
    take: usize,
    out: &mut Vec<HostId>,
) {
    match (split, over) {
        (CapSplit::AllWithin, true) | (CapSplit::AllOver, false) => {}
        (CapSplit::AllWithin, false) | (CapSplit::AllOver, true) => {
            out.extend(class.by_id.range(range).map(|(&id, _)| id).take(take));
        }
        (CapSplit::Mixed(t), _) => out.extend(
            class
                .by_id
                .range(range)
                .filter(|&(_, &s)| (s > t) == over)
                .map(|(&id, _)| id)
                .take(take),
        ),
    }
}

/// Inclusive-range bounds over one idle bucket's `(subscribed, id)` set.
type SubRange = (Bound<(u64, HostId)>, Bound<(u64, HostId)>);
/// Inclusive-range bounds over a class's `(subscribed, committed, id)` set.
type SubCommitRange = (Bound<(u64, u64, HostId)>, Bound<(u64, u64, HostId)>);

/// Appends up to `take` least-loaded keys `(idle, SR, id)` from one shape
/// class — the `over` flag selects the over-cap side of the `cap` split.
fn gather_least_loaded(
    class: &ShapeClass,
    cap: Option<u64>,
    over: bool,
    replication_factor: u32,
    take: usize,
    out: &mut Vec<(u32, f64, HostId)>,
) {
    let range: SubRange = if over {
        match cap {
            Some(u64::MAX) => return,
            Some(t) => (Bound::Excluded((t, HostId::MAX)), Bound::Unbounded),
            None => (Bound::Unbounded, Bound::Unbounded),
        }
    } else {
        match cap {
            Some(t) => (Bound::Unbounded, Bound::Included((t, HostId::MAX))),
            None => return,
        }
    };
    let mut taken = 0;
    for (&idle, bucket) in class.by_idle_sub.iter().rev() {
        for &(s, id) in bucket.range(range) {
            out.push((idle, class_sr(class.shape, replication_factor, s), id));
            taken += 1;
            if taken >= take {
                return;
            }
        }
    }
}

/// Appends up to `take` bin-packing keys `(S, C, id)` — descending — from
/// one shape class; `over` selects the over-cap side of the `cap` split.
fn gather_bin_packing(
    class: &ShapeClass,
    cap: Option<u64>,
    over: bool,
    take: usize,
    out: &mut Vec<(u64, u64, HostId)>,
) {
    let range: SubCommitRange = if over {
        match cap {
            Some(u64::MAX) => return,
            Some(t) => (
                Bound::Excluded((t, u64::MAX, HostId::MAX)),
                Bound::Unbounded,
            ),
            None => (Bound::Unbounded, Bound::Unbounded),
        }
    } else {
        match cap {
            Some(t) => (
                Bound::Unbounded,
                Bound::Included((t, u64::MAX, HostId::MAX)),
            ),
            None => return,
        }
    };
    out.extend(class.by_sub.range(range).rev().take(take));
}

/// The exact comparator [`Cluster::subscription_candidates_into`] sorts
/// with: most idle GPUs first, then lowest SR, then lowest id.
fn least_loaded_first(keyed: &mut [(u32, f64, HostId)]) {
    keyed.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(a.1.partial_cmp(&b.1).expect("SR is finite"))
            .then(a.2.cmp(&b.2))
    });
}

/// The fleet of GPU servers.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Hosts ascending by id (ids grow monotonically and are never
    /// reused), so lookups binary-search.
    hosts: Vec<Host>,
    next_host_id: HostId,
    /// Persistent shape census, ascending by
    /// `(gpus, millicpus, memory_mb)`; maintained on add/remove.
    census: Vec<(ResourceBundle, u32)>,
    /// Total GPUs across all hosts (`ΣG`). A host's capacity never
    /// changes after creation, so this is always exact.
    total_gpus: u64,
    /// Cached `ΣS` / `ΣC`; exact while `totals_valid`. `Cell`s so a
    /// `&self` read can repair the cache once after raw access instead
    /// of rescanning the slab on every read.
    total_subscribed: Cell<u64>,
    total_committed: Cell<u64>,
    /// Cleared by [`Cluster::host_mut`] (raw access may change per-host
    /// accounting behind the cluster's back); re-established lazily.
    totals_valid: Cell<bool>,
    /// The capacity-bucketed placement index. Interior mutability lets
    /// `&self` queries perform the lazy post-`host_mut` rebuild; the
    /// cluster is never shared across threads (sweeps build one platform
    /// per worker), so a `RefCell` suffices.
    index: RefCell<HostIndex>,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::new()
    }
}

/// One typed fleet mutation, batch-applied through
/// [`Cluster::apply_batch`]. Each variant routes to the matching typed
/// mutator ([`Cluster::subscribe`], [`Cluster::try_commit`], …), so a
/// batch keeps the fleet totals and the placement index incremental —
/// unlike raw [`Cluster::host_mut`] churn, which dirties both and makes
/// the next placement query pay an O(n log n) rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostMutation {
    /// Register a replica subscription ([`Cluster::subscribe`]).
    Subscribe {
        /// Target host.
        host: HostId,
        /// Shape being subscribed.
        request: ResourceRequest,
    },
    /// Remove a replica subscription ([`Cluster::unsubscribe`]).
    Unsubscribe {
        /// Target host.
        host: HostId,
        /// Shape being unsubscribed.
        request: ResourceRequest,
    },
    /// Exclusively bind resources for an executing replica
    /// ([`Cluster::try_commit`]; bound device ids are discarded).
    Commit {
        /// Target host.
        host: HostId,
        /// Committing replica.
        owner: OwnerId,
        /// Shape being bound.
        request: ResourceRequest,
    },
    /// Release an owner's commitment ([`Cluster::release`]).
    Release {
        /// Target host.
        host: HostId,
        /// Releasing replica.
        owner: OwnerId,
    },
    /// Mark or unmark a host as draining ([`Cluster::set_draining`]).
    SetDraining {
        /// Target host.
        host: HostId,
        /// New draining flag.
        draining: bool,
    },
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster {
            hosts: Vec::new(),
            next_host_id: 0,
            census: Vec::new(),
            total_gpus: 0,
            total_subscribed: Cell::new(0),
            total_committed: Cell::new(0),
            totals_valid: Cell::new(true),
            index: RefCell::new(HostIndex::default()),
        }
    }

    /// Creates a cluster of `n` identical hosts.
    pub fn with_hosts(n: usize, capacity: ResourceBundle) -> Self {
        let mut c = Cluster::new();
        for _ in 0..n {
            c.add_host(capacity);
        }
        c
    }

    /// Creates a heterogeneous cluster from `(shape, count)` pairs, in
    /// order — e.g. a fleet mixing 8-GPU trainers with smaller 4-GPU
    /// inference boxes. Host ids are assigned in pair order.
    pub fn with_host_mix(mix: &[(ResourceBundle, u32)]) -> Self {
        let mut c = Cluster::new();
        for &(shape, count) in mix {
            for _ in 0..count {
                c.add_host(shape);
            }
        }
        c
    }

    /// Adds a host, returning its id.
    pub fn add_host(&mut self, capacity: ResourceBundle) -> HostId {
        let id = self.next_host_id;
        self.next_host_id += 1;
        self.hosts.push(Host::new(id, capacity));
        self.total_gpus += u64::from(capacity.gpus);
        match self
            .census
            .binary_search_by_key(&census_key(&capacity), |(s, _)| census_key(s))
        {
            Ok(i) => self.census[i].1 += 1,
            Err(i) => self.census.insert(i, (capacity, 1)),
        }
        let index = self.index.get_mut();
        if !index.dirty {
            index.link(self.hosts.last().expect("host just pushed"));
        }
        id
    }

    /// Removes a host (only sensible when it is idle; the autoscaler drains
    /// first). Returns the host if it existed.
    pub fn remove_host(&mut self, id: HostId) -> Option<Host> {
        let idx = self.host_position(id)?;
        let index = self.index.get_mut();
        if !index.dirty {
            index.unlink(&self.hosts[idx]);
        }
        let host = self.hosts.remove(idx);
        let shape = host.capacity();
        self.total_gpus -= u64::from(shape.gpus);
        if self.totals_valid.get() {
            self.total_subscribed
                .set(self.total_subscribed.get() - host.subscribed_gpus());
            self.total_committed
                .set(self.total_committed.get() - u64::from(host.committed_gpus()));
        }
        let slot = self
            .census
            .binary_search_by_key(&census_key(&shape), |(s, _)| census_key(s))
            .expect("every host's shape is in the census");
        self.census[slot].1 -= 1;
        if self.census[slot].1 == 0 {
            self.census.remove(slot);
        }
        Some(host)
    }

    /// Slab position of host `id` (binary search — the slab is ascending
    /// by id).
    fn host_position(&self, id: HostId) -> Option<usize> {
        self.hosts.binary_search_by_key(&id, Host::id).ok()
    }

    /// All hosts, ascending by id.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable host lookup. Raw access can change per-host accounting the
    /// cluster cannot see, so the cached fleet totals are marked dirty and
    /// recomputed on the next read — prefer the typed mutators
    /// ([`Cluster::subscribe`], [`Cluster::try_commit`], …) on hot paths.
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut Host> {
        let idx = self.host_position(id)?;
        self.totals_valid.set(false);
        self.index.get_mut().dirty = true;
        Some(&mut self.hosts[idx])
    }

    /// Shared host lookup.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.host_position(id).map(|idx| &self.hosts[idx])
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Recomputes the cached `ΣS`/`ΣC` totals after raw
    /// [`Cluster::host_mut`] access invalidated them. Shared access:
    /// total readers repair the cache on first use (the `Cell` fields),
    /// so one raw mutation costs one rescan, not one per read.
    fn revalidate_totals(&self) {
        if !self.totals_valid.get() {
            self.total_subscribed
                .set(self.hosts.iter().map(Host::subscribed_gpus).sum());
            self.total_committed.set(
                self.hosts
                    .iter()
                    .map(|h| u64::from(h.committed_gpus()))
                    .sum(),
            );
            self.totals_valid.set(true);
        }
    }

    // ------------------------------------------------------------------
    // Typed mutators: the scheduler's hot path. Each applies the per-host
    // change, the fleet-total delta, and the placement-index relink in
    // O(log hosts), keeping every cluster-wide read O(1) and every top-k
    // placement query O(log hosts + k).
    // ------------------------------------------------------------------

    /// Unlink → `apply` → relink `self.hosts[idx]` so the placement index
    /// tracks the mutation; while the index is dirty (raw `host_mut`
    /// access happened) the relink is skipped and the next query rebuilds.
    fn apply_indexed<T>(&mut self, idx: usize, apply: impl FnOnce(&mut Host) -> T) -> T {
        if self.index.get_mut().dirty {
            return apply(&mut self.hosts[idx]);
        }
        self.index.get_mut().unlink(&self.hosts[idx]);
        let result = apply(&mut self.hosts[idx]);
        self.index.get_mut().link(&self.hosts[idx]);
        result
    }

    /// Registers a replica subscription on `host`. Returns `false` when
    /// the host does not exist.
    pub fn subscribe(&mut self, host: HostId, request: &ResourceRequest) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        self.apply_indexed(idx, |h| h.subscribe(request));
        self.total_subscribed
            .set(self.total_subscribed.get() + u64::from(request.gpus));
        true
    }

    /// Removes a replica subscription from `host`. Returns `false` when
    /// the host does not exist.
    ///
    /// # Panics
    ///
    /// Panics (like [`Host::unsubscribe`]) if the host exists but holds no
    /// matching subscription — that is an accounting bug.
    pub fn unsubscribe(&mut self, host: HostId, request: &ResourceRequest) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        self.apply_indexed(idx, |h| h.unsubscribe(request));
        self.total_subscribed
            .set(self.total_subscribed.get() - u64::from(request.gpus));
        true
    }

    /// Exclusively binds `request` on `host` for `owner`, writing the
    /// bound GPU device ids into `devices` (cleared first; the buffer is
    /// reusable across calls). Returns `false` — changing nothing — when
    /// the host does not exist or the commit fails.
    pub fn try_commit(
        &mut self,
        host: HostId,
        owner: OwnerId,
        request: &ResourceRequest,
        devices: &mut Vec<u32>,
    ) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        if self
            .apply_indexed(idx, |h| h.commit_into(owner, request, devices))
            .is_err()
        {
            return false;
        }
        self.total_committed
            .set(self.total_committed.get() + u64::from(request.gpus));
        true
    }

    /// Releases `owner`'s commitment on `host`, if any. Returns `false`
    /// when the host does not exist or the owner holds no commitment.
    pub fn release(&mut self, host: HostId, owner: OwnerId) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        if !self.hosts[idx].has_commitment(owner) {
            return false;
        }
        let freed = self.apply_indexed(idx, |h| h.release(owner));
        self.total_committed
            .set(self.total_committed.get() - u64::from(freed.gpus));
        true
    }

    /// Marks/unmarks `host` as draining. Returns `false` when the host
    /// does not exist.
    pub fn set_draining(&mut self, host: HostId, draining: bool) -> bool {
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        // unlink sees the old flag, link the new one, so the host moves
        // in/out of the per-shape class structures exactly when the
        // viability screen starts/stops seeing it.
        self.apply_indexed(idx, |h| h.set_draining(draining));
        true
    }

    /// Applies a batch of typed mutations in order, returning how many
    /// applied (a mutation naming a missing host, a failing commit, or a
    /// release with no matching commitment is skipped, exactly like its
    /// single-shot form). Equivalent to calling the typed mutators
    /// one-by-one but with one reusable device buffer across the whole
    /// batch — the way bench fixtures build loaded fleets without ever
    /// dirtying the placement index.
    pub fn apply_batch<I>(&mut self, mutations: I) -> usize
    where
        I: IntoIterator<Item = HostMutation>,
    {
        let mut devices = Vec::new();
        let mut applied = 0;
        for mutation in mutations {
            let ok = match mutation {
                HostMutation::Subscribe { host, request } => self.subscribe(host, &request),
                HostMutation::Unsubscribe { host, request } => self.unsubscribe(host, &request),
                HostMutation::Commit {
                    host,
                    owner,
                    request,
                } => self.try_commit(host, owner, &request, &mut devices),
                HostMutation::Release { host, owner } => self.release(host, owner),
                HostMutation::SetDraining { host, draining } => self.set_draining(host, draining),
            };
            applied += usize::from(ok);
        }
        applied
    }

    // ------------------------------------------------------------------
    // Fleet-wide reads
    // ------------------------------------------------------------------

    /// Total GPUs across all hosts (`ΣG`).
    pub fn total_gpus(&self) -> u64 {
        self.total_gpus
    }

    /// Total subscribed GPUs across all hosts (`ΣS`).
    pub fn total_subscribed_gpus(&self) -> u64 {
        self.revalidate_totals();
        self.total_subscribed.get()
    }

    /// Total GPUs exclusively committed to actively-executing replicas
    /// (`ΣC` in the autoscaler, §3.4.2).
    pub fn total_committed_gpus(&self) -> u64 {
        self.revalidate_totals();
        self.total_committed.get()
    }

    /// The dynamic cluster-wide SR limit `ΣS / (ΣG · R)` (§3.4.1).
    ///
    /// Returns infinity for an empty/GPU-less cluster so that placement
    /// decisions degrade to capacity checks only.
    pub fn sr_limit(&self, replication_factor: u32) -> f64 {
        let denom = self.total_gpus() * u64::from(replication_factor.max(1));
        if denom == 0 {
            return f64::INFINITY;
        }
        self.total_subscribed_gpus() as f64 / denom as f64
    }

    /// Hosts that could host a new replica subscription of `request`,
    /// ranked by §3.4.1's default policy: hosts whose post-placement SR
    /// stays within `sr_cap` come first (most idle GPUs, then lowest SR),
    /// followed by over-cap hosts ordered by ascending SR. The SR cap is a
    /// *preference* — "the server is rejected in favor of another" — so
    /// when demand outruns supply the cluster oversubscribes beyond the cap
    /// (Fig. 10 shows the cluster-wide SR reaching 3.0) while the
    /// auto-scaler catches up.
    ///
    /// `sr_cap` is typically `max(cluster sr_limit, 1.0)` so an empty
    /// cluster can still accept its first kernels.
    pub fn subscription_candidates(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Vec<HostId> {
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        self.subscription_candidates_into(
            request,
            replication_factor,
            sr_cap,
            &mut scratch,
            &mut out,
        );
        out
    }

    /// Allocation-free form of [`Cluster::subscription_candidates`]: the
    /// screen and the sort keys are captured in one pass over the slab
    /// into `scratch`, and the ranking is written to `out` (cleared
    /// first). A caller that reuses `scratch` and `out` ranks every
    /// placement without allocating.
    pub fn subscription_candidates_into(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        scratch: &mut RankScratch,
        out: &mut Vec<HostId>,
    ) {
        scratch.within.clear();
        scratch.over.clear();
        out.clear();
        let capacity_needed = ResourceBundle::from_request(request);
        for h in &self.hosts {
            if h.is_draining() || !h.capacity().covers(&capacity_needed) {
                continue;
            }
            let keyed = (
                h.idle_gpus(),
                h.subscription_ratio(replication_factor),
                h.id(),
            );
            if request.gpus > 0 && post_sr(h, request, replication_factor) > sr_cap {
                scratch.over.push(keyed);
            } else {
                scratch.within.push(keyed);
            }
        }
        least_loaded_first(&mut scratch.within);
        least_loaded_first(&mut scratch.over);
        out.extend(scratch.within.iter().map(|&(_, _, id)| id));
        out.extend(scratch.over.iter().map(|&(_, _, id)| id));
    }

    /// The single viability rule every placement policy shares: hosts whose
    /// *capacity* covers the request and that are not draining, split into
    /// those the SR cap allows and those it forbids (§3.4.1). CPU-only
    /// requests never count against the cap. Segments are ascending by
    /// host id; policies order within them.
    pub fn viable_hosts(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Viability {
        let mut viable = Viability::default();
        self.viable_hosts_into(request, replication_factor, sr_cap, &mut viable);
        viable
    }

    /// Allocation-free form of [`Cluster::viable_hosts`]: clears and
    /// refills `out`, so a caller that owns the buffer screens every
    /// placement without allocating.
    pub fn viable_hosts_into(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        out: &mut Viability,
    ) {
        out.clear();
        let capacity_needed = ResourceBundle::from_request(request);
        for h in &self.hosts {
            if h.is_draining() || !h.capacity().covers(&capacity_needed) {
                continue;
            }
            if request.gpus > 0 && post_sr(h, request, replication_factor) > sr_cap {
                out.over_cap.push(h.id());
            } else {
                out.within_cap.push(h.id());
            }
        }
        // `hosts` is ascending by id (ids are never reused and grow
        // monotonically), so the segments inherit that order.
    }

    /// The fleet's shape census: distinct host shapes with their counts,
    /// ascending by `(gpus, millicpus, memory_mb)` — the catalog the
    /// platform hands a shape-aware elasticity policy, so "first covering
    /// shape" means "cheapest covering shape". Served from the persistent
    /// census index (maintained on add/remove), not a fleet scan.
    pub fn shape_census(&self) -> Vec<(ResourceBundle, u32)> {
        self.census.clone()
    }

    /// Hosts with zero replicas and zero commitments — candidates for
    /// scale-in (§3.4.2: "idle servers are those with no active training
    /// kernel replicas").
    pub fn idle_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.replica_count() == 0 && h.active_commitments() == 0)
            .map(Host::id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Indexed placement queries: sub-linear replacements for the slab
    // scans. Each reproduces its scan counterpart's ordering bit for bit
    // (the golden determinism suite and the index-equivalence proptests
    // pin this), it just stops touching every host per decision.
    // ------------------------------------------------------------------

    /// The placement index, rebuilt first if raw [`Cluster::host_mut`]
    /// access dirtied it.
    fn sync_index(&self) -> Ref<'_, HostIndex> {
        {
            let mut index = self.index.borrow_mut();
            if index.dirty {
                index.rebuild(&self.hosts);
            }
        }
        self.index.borrow()
    }

    /// Number of viable hosts for `request` (capacity covers, not
    /// draining) — [`Cluster::viable_hosts`]' `len()` without the scan:
    /// O(shape classes) via the per-class live counts.
    pub fn viable_count(&self, request: &ResourceRequest) -> usize {
        let needed = ResourceBundle::from_request(request);
        self.sync_index()
            .classes
            .iter()
            .filter(|c| c.shape.covers(&needed))
            .map(|c| c.len)
            .sum()
    }

    /// The viability *split* — [`Cluster::viable_hosts`]' segment lengths
    /// `(within_cap, over_cap)` — without materializing the host lists.
    /// Per covering class the `class_cap` threshold plus the BTree
    /// boundary keys resolve homogeneous classes in O(log); only a class
    /// the cap genuinely splits counts its (over-cap) range, so no host
    /// in the slab is ever dereferenced.
    pub fn viable_counts(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> (usize, usize) {
        let needed = ResourceBundle::from_request(request);
        let (mut within, mut over) = (0usize, 0usize);
        let index = self.sync_index();
        for class in index.classes.iter().filter(|c| c.shape.covers(&needed)) {
            let cap = class_cap(request, class.shape, replication_factor, sr_cap);
            match cap_split(class, cap) {
                CapSplit::AllWithin => within += class.len,
                CapSplit::AllOver => over += class.len,
                CapSplit::Mixed(t) => {
                    let range: SubCommitRange = (
                        Bound::Excluded((t, u64::MAX, HostId::MAX)),
                        Bound::Unbounded,
                    );
                    let o = class.by_sub.range(range).count();
                    over += o;
                    within += class.len - o;
                }
            }
        }
        (within, over)
    }

    /// The first `limit` hosts of [`Cluster::subscription_candidates`]
    /// (the least-loaded ranking) without scanning the slab, plus the
    /// total viable count as the return value. Within each covering shape
    /// class the BTree order *is* the least-loaded order, so this gathers
    /// ≤ `limit` candidates per class and merges the handful with the
    /// scan's exact comparator: O(classes · (log hosts + limit)).
    pub fn rank_least_loaded_top(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        limit: usize,
        scratch: &mut RankScratch,
        out: &mut Vec<HostId>,
    ) -> usize {
        scratch.within.clear();
        scratch.over.clear();
        out.clear();
        let needed = ResourceBundle::from_request(request);
        let index = self.sync_index();
        let covering = || index.classes.iter().filter(|c| c.shape.covers(&needed));
        let total: usize = covering().map(|c| c.len).sum();
        if limit == 0 || total == 0 {
            return total;
        }
        for class in covering() {
            let cap = class_cap(request, class.shape, replication_factor, sr_cap);
            gather_least_loaded(
                class,
                cap,
                false,
                replication_factor,
                limit,
                &mut scratch.within,
            );
        }
        least_loaded_first(&mut scratch.within);
        scratch.within.truncate(limit);
        out.extend(scratch.within.iter().map(|&(_, _, id)| id));
        if out.len() < limit {
            let rest = limit - out.len();
            for class in covering() {
                let cap = class_cap(request, class.shape, replication_factor, sr_cap);
                gather_least_loaded(
                    class,
                    cap,
                    true,
                    replication_factor,
                    rest,
                    &mut scratch.over,
                );
            }
            least_loaded_first(&mut scratch.over);
            scratch.over.truncate(rest);
            out.extend(scratch.over.iter().map(|&(_, _, id)| id));
        }
        total
    }

    /// The first `limit` hosts of the bin-packing ranking (most
    /// subscribed, then most committed, then highest id, within-cap
    /// segment first) without scanning the slab; returns the total viable
    /// count. Same per-class gather-and-merge shape as
    /// [`Cluster::rank_least_loaded_top`].
    pub fn rank_bin_packing_top(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        limit: usize,
        keyed: &mut Vec<(u64, u64, HostId)>,
        out: &mut Vec<HostId>,
    ) -> usize {
        keyed.clear();
        out.clear();
        let needed = ResourceBundle::from_request(request);
        let index = self.sync_index();
        let covering = || index.classes.iter().filter(|c| c.shape.covers(&needed));
        let total: usize = covering().map(|c| c.len).sum();
        if limit == 0 || total == 0 {
            return total;
        }
        for class in covering() {
            let cap = class_cap(request, class.shape, replication_factor, sr_cap);
            gather_bin_packing(class, cap, false, limit, keyed);
        }
        keyed.sort_by(|a, b| b.cmp(a));
        keyed.truncate(limit);
        out.extend(keyed.iter().map(|&(_, _, id)| id));
        if out.len() < limit {
            let rest = limit - out.len();
            keyed.clear();
            for class in covering() {
                let cap = class_cap(request, class.shape, replication_factor, sr_cap);
                gather_bin_packing(class, cap, true, rest, keyed);
            }
            keyed.sort_by(|a, b| b.cmp(a));
            keyed.truncate(rest);
            out.extend(keyed.iter().map(|&(_, _, id)| id));
        }
        total
    }

    /// The first `limit` hosts of the round-robin ranking (ids rotated
    /// past `last`, within-cap segment first) and the total viable count.
    ///
    /// Served from the per-class rotation-ordered BTrees rather than a
    /// circular slab walk: each rotation phase (ids after `last`, then
    /// the wrap back to `last`) range-scans every covering class in
    /// ascending-id order — which *is* the global rotation order within a
    /// phase — takes at most `limit` qualifying ids per class, and keeps
    /// the smallest across classes. Draining hosts are not in the class
    /// structures at all, and a class whose members are uniformly over
    /// (or under) the SR cap is classified from its BTree boundary keys,
    /// so the all-over-cap and mostly-draining fleets that degraded the
    /// slab walk to O(hosts) now answer in O(classes · (log hosts +
    /// limit)). Only a class the cap genuinely splits walks members past
    /// the threshold check.
    // Mirrors the scan-path signature (request/RF/cap/cursor) plus the
    // two caller-owned scratch buffers the allocation-free API requires.
    #[allow(clippy::too_many_arguments)]
    pub fn rank_round_robin_top(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        last: Option<HostId>,
        limit: usize,
        over_scratch: &mut Vec<HostId>,
        out: &mut Vec<HostId>,
    ) -> usize {
        out.clear();
        over_scratch.clear();
        let needed = ResourceBundle::from_request(request);
        let index = self.sync_index();
        let covering = || index.classes.iter().filter(|c| c.shape.covers(&needed));
        let total: usize = covering().map(|c| c.len).sum();
        if limit == 0 || total == 0 {
            return total;
        }
        // Rotation phases: ids strictly after `last`, then the wrap back
        // to (and including) `last`. With no cursor the single unbounded
        // phase is the plain ascending order.
        let phases: [Option<(Bound<HostId>, Bound<HostId>)>; 2] = match last {
            Some(last) => [
                Some((Bound::Excluded(last), Bound::Unbounded)),
                Some((Bound::Unbounded, Bound::Included(last))),
            ],
            None => [Some((Bound::Unbounded, Bound::Unbounded)), None],
        };
        let fill = |over: bool, want: usize, dest: &mut Vec<HostId>| {
            for phase in phases.iter().flatten() {
                if dest.len() >= want {
                    break;
                }
                let before = dest.len();
                for class in covering() {
                    let cap = class_cap(request, class.shape, replication_factor, sr_cap);
                    gather_round_robin(
                        class,
                        cap_split(class, cap),
                        over,
                        *phase,
                        want - before,
                        dest,
                    );
                }
                // Within a phase every class range is ascending by id, so
                // the globally-first `want` ids are the smallest gathered.
                dest[before..].sort_unstable();
                dest.truncate(want.max(before));
            }
        };
        // Within-cap segment first, then — only if short — the over-cap
        // segment, exactly the scan path's preference order.
        fill(false, limit, out);
        if out.len() < limit {
            let rest = limit - out.len();
            fill(true, rest, over_scratch);
            out.extend(over_scratch.iter());
        }
        total
    }

    /// The host the commit-side baseline scans pick: maximum
    /// `(idle GPUs, id)` among hosts that can commit `request` right now.
    /// Served by a reverse walk of the global idle-GPU index — O(log
    /// hosts) when the most-idle host accepts, which is the common case.
    pub fn best_commit_host(&self, request: &ResourceRequest) -> Option<HostId> {
        let index = self.sync_index();
        for &(idle, id) in index.by_idle.iter().rev() {
            if request.gpus > 0 && idle < request.gpus {
                break;
            }
            let h = self.host(id).expect("indexed host exists");
            if h.can_commit(request) {
                return Some(id);
            }
        }
        None
    }

    /// [`Cluster::best_commit_host`] with the migration target scan's
    /// extra filters: skips draining hosts and everything in `exclude`
    /// (the kernel's current replica hosts).
    pub fn best_commit_host_excluding(
        &self,
        request: &ResourceRequest,
        exclude: &[HostId],
    ) -> Option<HostId> {
        let index = self.sync_index();
        for &(idle, id) in index.by_idle.iter().rev() {
            if request.gpus > 0 && idle < request.gpus {
                break;
            }
            if exclude.contains(&id) {
                continue;
            }
            let h = self.host(id).expect("indexed host exists");
            if !h.is_draining() && h.can_commit(request) {
                return Some(id);
            }
        }
        None
    }

    /// The host the LCP submit scan picks: maximum `(has warm container,
    /// idle GPUs, id)` among hosts that can commit `request`, where
    /// `warm_on` reports a host's warm-container count. The first warm
    /// host on the reverse idle walk wins; otherwise the first host at
    /// all (the plain best-commit choice).
    pub fn best_warm_commit_host(
        &self,
        request: &ResourceRequest,
        warm_on: impl Fn(HostId) -> u32,
    ) -> Option<HostId> {
        let index = self.sync_index();
        let mut cold_best = None;
        for &(idle, id) in index.by_idle.iter().rev() {
            if request.gpus > 0 && idle < request.gpus {
                break;
            }
            let h = self.host(id).expect("indexed host exists");
            if !h.can_commit(request) {
                continue;
            }
            if warm_on(id) > 0 {
                return Some(id);
            }
            if cold_best.is_none() {
                cold_best = Some(id);
            }
        }
        cold_best
    }
}

/// The SR `host` would have after accepting `request` (§3.4.1).
fn post_sr(h: &Host, request: &ResourceRequest, replication_factor: u32) -> f64 {
    (h.subscribed_gpus() + u64::from(request.gpus)) as f64
        / (u64::from(h.capacity().gpus.max(1)) * u64::from(replication_factor.max(1))) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::CommitError;

    fn gpu_req(gpus: u32) -> ResourceRequest {
        ResourceRequest::new(4000, 16_384, gpus, 16)
    }

    #[test]
    fn add_and_remove_hosts() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_gpus(), 24);
        let removed = c.remove_host(1).unwrap();
        assert_eq!(removed.id(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.remove_host(99).is_none());
        // Ids are never reused.
        let id = c.add_host(ResourceBundle::p3_16xlarge());
        assert_eq!(id, 3);
    }

    #[test]
    fn totals_track_subscriptions_and_commits() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        assert_eq!(c.total_subscribed_gpus(), 6);
        c.host_mut(0).unwrap().commit(7, &gpu_req(4)).unwrap();
        assert_eq!(c.total_committed_gpus(), 4);
        // SR limit: 6 / (16 * 3).
        assert!((c.sr_limit(3) - 6.0 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn typed_mutators_keep_totals_incremental() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        assert!(c.subscribe(0, &gpu_req(4)));
        assert!(c.subscribe(1, &gpu_req(2)));
        assert!(!c.subscribe(99, &gpu_req(1)), "missing host refused");
        assert_eq!(c.total_subscribed_gpus(), 6);

        let mut devices = Vec::new();
        assert!(c.try_commit(0, 7, &gpu_req(4), &mut devices));
        assert_eq!(devices, vec![0, 1, 2, 3]);
        assert!(
            !c.try_commit(0, 7, &gpu_req(1), &mut devices),
            "double commit refused"
        );
        assert!(
            !c.try_commit(99, 8, &gpu_req(1), &mut devices),
            "missing host refused"
        );
        assert_eq!(c.total_committed_gpus(), 4);

        assert!(c.release(0, 7));
        assert!(!c.release(0, 7), "second release refused");
        assert!(!c.release(99, 7));
        assert_eq!(c.total_committed_gpus(), 0);

        assert!(c.unsubscribe(0, &gpu_req(4)));
        assert!(!c.unsubscribe(99, &gpu_req(1)));
        assert_eq!(c.total_subscribed_gpus(), 2);

        assert!(c.set_draining(1, true));
        assert!(c.host(1).unwrap().is_draining());
        assert!(!c.set_draining(99, true));
    }

    /// The batch covering every variant (plus skipped mutations) against
    /// the same stream applied through raw `host_mut` one at a time.
    fn equivalence_batch() -> Vec<HostMutation> {
        vec![
            HostMutation::Subscribe {
                host: 0,
                request: gpu_req(4),
            },
            HostMutation::Subscribe {
                host: 1,
                request: gpu_req(2),
            },
            HostMutation::Subscribe {
                host: 2,
                request: gpu_req(1),
            },
            HostMutation::Commit {
                host: 0,
                owner: 7,
                request: gpu_req(4),
            },
            HostMutation::Commit {
                host: 1,
                owner: 8,
                request: gpu_req(2),
            },
            HostMutation::Unsubscribe {
                host: 2,
                request: gpu_req(1),
            },
            HostMutation::Release { host: 1, owner: 8 },
            HostMutation::SetDraining {
                host: 3,
                draining: true,
            },
            // Skipped: missing host, double commit, release w/o commitment.
            HostMutation::Subscribe {
                host: 99,
                request: gpu_req(1),
            },
            HostMutation::Commit {
                host: 0,
                owner: 7,
                request: gpu_req(1),
            },
            HostMutation::Release { host: 2, owner: 42 },
        ]
    }

    #[test]
    fn apply_batch_matches_one_at_a_time_host_mut() {
        let mut batched = Cluster::with_hosts(4, ResourceBundle::p3_16xlarge());
        let applied = batched.apply_batch(equivalence_batch());
        assert_eq!(applied, 8, "three mutations are skipped");

        // Same stream through raw host access, one call at a time.
        let mut raw = Cluster::with_hosts(4, ResourceBundle::p3_16xlarge());
        raw.host_mut(0).unwrap().subscribe(&gpu_req(4));
        raw.host_mut(1).unwrap().subscribe(&gpu_req(2));
        raw.host_mut(2).unwrap().subscribe(&gpu_req(1));
        raw.host_mut(0).unwrap().commit(7, &gpu_req(4)).unwrap();
        raw.host_mut(1).unwrap().commit(8, &gpu_req(2)).unwrap();
        raw.host_mut(2).unwrap().unsubscribe(&gpu_req(1));
        raw.host_mut(1).unwrap().release(8);
        raw.host_mut(3).unwrap().set_draining(true);
        assert_eq!(
            raw.host_mut(0).unwrap().commit(7, &gpu_req(1)),
            Err(CommitError::AlreadyCommitted(7))
        );

        // Identical per-host accounting and fleet totals…
        for (b, r) in batched.hosts().iter().zip(raw.hosts()) {
            assert_eq!(b.id(), r.id());
            assert_eq!(b.subscribed_gpus(), r.subscribed_gpus(), "host {}", b.id());
            assert_eq!(b.committed_gpus(), r.committed_gpus(), "host {}", b.id());
            assert_eq!(b.is_draining(), r.is_draining(), "host {}", b.id());
        }
        assert_eq!(batched.total_subscribed_gpus(), raw.total_subscribed_gpus());
        assert_eq!(batched.total_committed_gpus(), raw.total_committed_gpus());

        // …and identical placement answers.
        assert_eq!(
            batched.viable_hosts(&gpu_req(2), 3, 1.5),
            raw.viable_hosts(&gpu_req(2), 3, 1.5)
        );
        assert_eq!(
            batched.subscription_candidates(&gpu_req(2), 3, 1.5),
            raw.subscription_candidates(&gpu_req(2), 3, 1.5)
        );

        // The batch path never dirtied the placement index; the raw path
        // pays a rebuild on its next query.
        assert!(!batched.index.borrow().dirty, "batch stays incremental");
    }

    #[test]
    fn raw_host_mut_access_self_heals_the_totals() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        assert!(c.subscribe(0, &gpu_req(4)));
        // Raw mutation the cluster cannot observe…
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        c.host_mut(1).unwrap().commit(9, &gpu_req(2)).unwrap();
        // …is still reflected exactly in the fleet totals…
        assert_eq!(c.total_subscribed_gpus(), 6);
        assert_eq!(c.total_committed_gpus(), 2);
        // …and typed mutations afterwards stay exact too.
        assert!(c.subscribe(0, &gpu_req(1)));
        assert!(c.release(1, 9));
        assert_eq!(c.total_subscribed_gpus(), 7);
        assert_eq!(c.total_committed_gpus(), 0);
        // Removing a host while dirty keeps totals exact as well.
        c.host_mut(0).unwrap().subscribe(&gpu_req(1));
        c.remove_host(0);
        assert_eq!(c.total_subscribed_gpus(), 2);
    }

    #[test]
    fn empty_cluster_sr_limit_is_infinite() {
        let c = Cluster::new();
        assert!(c.sr_limit(3).is_infinite());
    }

    #[test]
    fn candidates_prefer_least_loaded() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0 busiest, host 2 idle.
        c.host_mut(0).unwrap().commit(1, &gpu_req(6)).unwrap();
        c.host_mut(1).unwrap().commit(2, &gpu_req(3)).unwrap();
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![2, 1, 0]);
    }

    #[test]
    fn candidates_prefer_hosts_within_sr_cap() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        // Host 0 heavily subscribed: S = 24 → SR = 1.0 at R = 3, so another
        // 4-GPU subscription would push it over the cap.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        let ranked = c.subscription_candidates(&gpu_req(4), 3, 1.0);
        assert_eq!(
            ranked,
            vec![1, 0],
            "saturated host ranked last, not dropped"
        );
        // CPU-only kernels are exempt from the SR ordering.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        assert_eq!(c.subscription_candidates(&cpu, 3, 1.0).len(), 2);
    }

    #[test]
    fn candidates_into_reuses_buffers_and_matches_allocating_form() {
        let mut c = Cluster::with_hosts(6, ResourceBundle::p3_16xlarge());
        for i in 0..6u64 {
            for _ in 0..i {
                c.host_mut(i).unwrap().subscribe(&gpu_req(2));
            }
        }
        c.host_mut(3).unwrap().commit(5, &gpu_req(5)).unwrap();
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        for req_gpus in [1, 4] {
            let req = gpu_req(req_gpus);
            c.subscription_candidates_into(&req, 3, 1.0, &mut scratch, &mut out);
            assert_eq!(out, c.subscription_candidates(&req, 3, 1.0));
        }
    }

    #[test]
    fn draining_hosts_excluded() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().set_draining(true);
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![1]);
    }

    #[test]
    fn oversized_requests_have_no_candidates() {
        let c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        let giant = ResourceRequest::new(1000, 1024, 9, 16);
        assert!(c.subscription_candidates(&giant, 3, 10.0).is_empty());
    }

    #[test]
    fn viable_hosts_splits_on_sr_cap() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0: S = 24 → another 4-GPU subscription exceeds SR 1.0 at R=3.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        c.host_mut(2).unwrap().set_draining(true);
        let v = c.viable_hosts(&gpu_req(4), 3, 1.0);
        assert_eq!(v.within_cap, vec![1]);
        assert_eq!(v.over_cap, vec![0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.into_ranked(), vec![1, 0]);
        // CPU-only requests are exempt from the cap.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        let v = c.viable_hosts(&cpu, 3, 1.0);
        assert_eq!(v.within_cap, vec![0, 1]);
        assert!(v.over_cap.is_empty());
        // The scratch form refills (not appends) reused buffers.
        let mut buf = Viability::default();
        c.viable_hosts_into(&gpu_req(4), 3, 1.0, &mut buf);
        let first = buf.clone();
        c.viable_hosts_into(&gpu_req(4), 3, 1.0, &mut buf);
        assert_eq!(buf, first);
    }

    #[test]
    fn heterogeneous_mix_builds_in_order() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 2), (small, 3)]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.total_gpus(), 2 * 8 + 3 * 4);
        assert_eq!(c.host(0).unwrap().capacity().gpus, 8);
        assert_eq!(c.host(4).unwrap().capacity().gpus, 4);
    }

    #[test]
    fn shape_census_counts_distinct_shapes() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let mut c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 2), (small, 3)]);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3), (ResourceBundle::p3_16xlarge(), 2)],
            "ascending by gpus"
        );
        c.remove_host(0);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3), (ResourceBundle::p3_16xlarge(), 1)]
        );
        c.remove_host(1);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3)],
            "exhausted shapes drop out of the census"
        );
        assert!(Cluster::new().shape_census().is_empty());
    }

    #[test]
    fn idle_host_detection() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(1));
        assert_eq!(c.idle_hosts(), vec![1]);
    }

    /// Scan-path reference for [`Cluster::best_commit_host`].
    fn scan_best_commit(c: &Cluster, req: &ResourceRequest) -> Option<HostId> {
        c.hosts()
            .iter()
            .filter(|h| h.can_commit(req))
            .map(|h| (h.idle_gpus(), h.id()))
            .max()
            .map(|(_, id)| id)
    }

    #[test]
    fn indexed_least_loaded_matches_scan_prefix() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let mut c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 4), (small, 3)]);
        for i in 0..7u64 {
            for _ in 0..i % 4 {
                assert!(c.subscribe(i, &gpu_req(2)));
            }
        }
        let mut devices = Vec::new();
        assert!(c.try_commit(1, 50, &gpu_req(5), &mut devices));
        assert!(c.try_commit(4, 51, &gpu_req(2), &mut devices));
        assert!(c.set_draining(2, true));
        let mut scratch = RankScratch::default();
        let mut top = Vec::new();
        for req_gpus in [0, 1, 4] {
            let req = gpu_req(req_gpus);
            let full = c.subscription_candidates(&req, 3, 1.0);
            for limit in [0, 1, 3, full.len(), full.len() + 2] {
                let total = c.rank_least_loaded_top(&req, 3, 1.0, limit, &mut scratch, &mut top);
                assert_eq!(total, full.len(), "viable total for limit {limit}");
                assert_eq!(
                    top,
                    full[..limit.min(full.len())],
                    "prefix for limit {limit}"
                );
            }
            assert_eq!(c.viable_count(&req), full.len());
        }
    }

    #[test]
    fn indexed_bin_packing_matches_scan_prefix() {
        let mut c = Cluster::with_hosts(6, ResourceBundle::p3_16xlarge());
        for i in 0..6u64 {
            for _ in 0..(6 - i) % 5 {
                assert!(c.subscribe(i, &gpu_req(3)));
            }
        }
        let mut devices = Vec::new();
        assert!(c.try_commit(3, 60, &gpu_req(4), &mut devices));
        let req = gpu_req(2);
        // Scan reference: the policy's (S, C, id)-descending order per
        // SR-cap segment.
        let v = c.viable_hosts(&req, 3, 1.0);
        let keyed = |ids: &[HostId]| {
            let mut k: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let h = c.host(id).unwrap();
                    (h.subscribed_gpus(), u64::from(h.committed_gpus()), id)
                })
                .collect();
            k.sort_by(|a, b| b.cmp(a));
            k.into_iter().map(|(_, _, id)| id).collect::<Vec<_>>()
        };
        let mut full = keyed(&v.within_cap);
        full.extend(keyed(&v.over_cap));
        let mut scratch = Vec::new();
        let mut top = Vec::new();
        for limit in [1, 2, full.len(), full.len() + 1] {
            let total = c.rank_bin_packing_top(&req, 3, 1.0, limit, &mut scratch, &mut top);
            assert_eq!(total, full.len());
            assert_eq!(
                top,
                full[..limit.min(full.len())],
                "prefix for limit {limit}"
            );
        }
    }

    #[test]
    fn indexed_round_robin_rotates_like_the_scan() {
        let mut c = Cluster::with_hosts(5, ResourceBundle::p3_16xlarge());
        assert!(c.set_draining(1, true));
        for _ in 0..7 {
            assert!(c.subscribe(3, &gpu_req(4)));
        }
        let req = gpu_req(4);
        // Scan reference: rotate each viability segment past `last`.
        let rotate = |ids: &[HostId], last: Option<HostId>| {
            let pivot = match last {
                Some(l) => ids.partition_point(|&h| h <= l) % ids.len().max(1),
                None => 0,
            };
            let mut r = ids[pivot..].to_vec();
            r.extend(&ids[..pivot]);
            r
        };
        let mut over = Vec::new();
        let mut top = Vec::new();
        for last in [None, Some(0), Some(2), Some(4), Some(9)] {
            let v = c.viable_hosts(&req, 3, 1.0);
            let mut full = rotate(&v.within_cap, last);
            full.extend(rotate(&v.over_cap, last));
            for limit in [1, 2, full.len() + 1] {
                let total = c.rank_round_robin_top(&req, 3, 1.0, last, limit, &mut over, &mut top);
                assert_eq!(total, full.len());
                assert_eq!(
                    top,
                    full[..limit.min(full.len())],
                    "prefix for last {last:?} limit {limit}"
                );
            }
        }
    }

    #[test]
    fn indexed_best_commit_matches_scan_and_tracks_mutation() {
        let mut c = Cluster::with_hosts(4, ResourceBundle::p3_16xlarge());
        let mut devices = Vec::new();
        assert!(c.try_commit(2, 70, &gpu_req(6), &mut devices));
        assert!(c.try_commit(3, 71, &gpu_req(2), &mut devices));
        for req_gpus in [0, 1, 7] {
            let req = gpu_req(req_gpus);
            assert_eq!(c.best_commit_host(&req), scan_best_commit(&c, &req));
        }
        // Release moves host 2 back to the front (highest idle wins, ties
        // break towards the higher id).
        assert!(c.release(2, 70));
        assert_eq!(c.best_commit_host(&gpu_req(1)), Some(2));
        assert!(c.release(3, 71));
        assert_eq!(c.best_commit_host(&gpu_req(1)), Some(3));
        // Exclusion + draining filters (the migration target scan).
        assert!(c.set_draining(3, true));
        assert_eq!(
            c.best_commit_host_excluding(&gpu_req(1), &[2, 1]),
            Some(0),
            "draining host 3 and excluded hosts 2/1 skipped"
        );
        // Warm preference (the LCP submit scan): host 1 wins despite host
        // 2 being equally idle with a higher id.
        assert_eq!(
            c.best_warm_commit_host(&gpu_req(1), |id| u32::from(id == 1)),
            Some(1)
        );
        assert_eq!(
            c.best_warm_commit_host(&gpu_req(1), |_| 0),
            c.best_commit_host(&gpu_req(1))
        );
    }

    #[test]
    fn index_self_heals_after_raw_host_mut_churn() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        let mut scratch = RankScratch::default();
        let mut top = Vec::new();
        let req = gpu_req(1);
        c.rank_least_loaded_top(&req, 3, 1.0, 3, &mut scratch, &mut top);
        assert_eq!(top, vec![0, 1, 2]);
        // Raw mutation the index cannot observe…
        c.host_mut(2).unwrap().commit(80, &gpu_req(8)).unwrap();
        c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        // …is reflected exactly on the next query (lazy rebuild)…
        let total = c.rank_least_loaded_top(&req, 3, 1.0, 3, &mut scratch, &mut top);
        assert_eq!(
            (total, top.clone()),
            (3, c.subscription_candidates(&req, 3, 1.0))
        );
        assert_eq!(c.best_commit_host(&gpu_req(8)), Some(1));
        // …and typed mutations afterwards keep it incremental and exact.
        assert!(c.release(2, 80));
        assert_eq!(c.best_commit_host(&gpu_req(8)), Some(2));
        // add/remove while dirty stays consistent too.
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        let id = c.add_host(ResourceBundle::p3_16xlarge());
        c.remove_host(0);
        assert_eq!(
            c.subscription_candidates(&req, 3, 1.0),
            {
                let mut out = Vec::new();
                c.rank_least_loaded_top(&req, 3, 1.0, 8, &mut scratch, &mut out);
                out
            },
            "index equals scan after dirty add/remove (new host {id})"
        );
    }

    #[test]
    fn viable_counts_split_matches_materialized_screen() {
        // Every way the split can fall: mixed shapes, a draining host, a
        // CPU-only (cap-exempt) request, classes entirely over the cap,
        // and classes the cap genuinely splits.
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let mut c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 4), (small, 3)]);
        for _ in 0..7 {
            assert!(c.subscribe(0, &gpu_req(4))); // push host 0 over the cap
        }
        for i in 4..7u64 {
            for _ in 0..4 {
                assert!(c.subscribe(i, &gpu_req(4))); // whole small class over
            }
        }
        assert!(c.set_draining(2, true));
        for req in [
            ResourceRequest::new(4000, 16_384, 1, 16),
            ResourceRequest::new(4000, 16_384, 4, 16),
            ResourceRequest::new(4000, 16_384, 6, 16), // only the big shape covers
            ResourceRequest::new(1000, 2_048, 0, 0),   // cap-exempt
            ResourceRequest::new(1_000_000, 1, 0, 0),  // nothing covers
        ] {
            let v = c.viable_hosts(&req, 3, 1.0);
            assert_eq!(
                c.viable_counts(&req, 3, 1.0),
                (v.within_cap.len(), v.over_cap.len()),
                "split for {req:?}"
            );
        }
    }

    #[test]
    fn round_robin_worst_cases_match_the_scan_reference() {
        // The degradation cases the rotation-ordered BTrees exist for:
        // (a) every host over the SR cap, (b) most of the fleet draining.
        let mut c = Cluster::with_hosts(12, ResourceBundle::p3_16xlarge());
        for i in 0..12u64 {
            for _ in 0..7 {
                assert!(c.subscribe(i, &gpu_req(4)));
            }
        }
        for i in 0..9u64 {
            assert!(c.set_draining(i, true));
        }
        let req = gpu_req(4);
        let rotate = |ids: &[HostId], last: Option<HostId>| {
            let pivot = match last {
                Some(l) => ids.partition_point(|&h| h <= l) % ids.len().max(1),
                None => 0,
            };
            let mut r = ids[pivot..].to_vec();
            r.extend(&ids[..pivot]);
            r
        };
        let mut over = Vec::new();
        let mut top = Vec::new();
        for last in [None, Some(9), Some(10), Some(11), Some(99)] {
            let v = c.viable_hosts(&req, 3, 1.0);
            assert!(v.within_cap.is_empty(), "every live host is over the cap");
            let full = rotate(&v.over_cap, last);
            for limit in [1, 2, 3, 5] {
                let total = c.rank_round_robin_top(&req, 3, 1.0, last, limit, &mut over, &mut top);
                assert_eq!(total, full.len());
                assert_eq!(
                    top,
                    full[..limit.min(full.len())],
                    "prefix for last {last:?} limit {limit}"
                );
            }
        }
        // Un-drain one mid-fleet host and relieve its load: a genuinely
        // mixed class (one within-cap member among over-cap ones).
        assert!(c.set_draining(5, false));
        for _ in 0..7 {
            assert!(c.unsubscribe(5, &gpu_req(4)));
        }
        let v = c.viable_hosts(&req, 3, 1.0);
        assert_eq!(v.within_cap, vec![5]);
        for last in [None, Some(5), Some(11)] {
            let mut full = rotate(&v.within_cap, last);
            full.extend(rotate(&v.over_cap, last));
            let total = c.rank_round_robin_top(&req, 3, 1.0, last, 3, &mut over, &mut top);
            assert_eq!(total, full.len());
            assert_eq!(top, full[..3.min(full.len())], "mixed class, last {last:?}");
        }
    }

    #[test]
    fn oversized_commit_still_errors_through_the_host() {
        let mut c = Cluster::with_hosts(1, ResourceBundle::p3_16xlarge());
        let err = c.host_mut(0).unwrap().commit(1, &gpu_req(99)).unwrap_err();
        assert!(matches!(err, CommitError::Insufficient { .. }));
        let mut devices = vec![7u32];
        assert!(!c.try_commit(0, 1, &gpu_req(99), &mut devices));
        assert!(devices.is_empty(), "failed commit clears the scratch");
    }
}
