//! The cluster: a collection of hosts plus the cluster-wide accounting the
//! scheduler and autoscaler read.
//!
//! # The incremental host index
//!
//! Placement runs once per kernel creation and commit/release once per
//! cell, so everything the scheduler reads on that path is served from
//! state maintained *incrementally* instead of being re-derived per query:
//!
//! * the host slab is ascending by id (ids are never reused), so host
//!   lookup is a binary search instead of a linear scan;
//! * `ΣG`/`ΣS`/`ΣC` fleet totals are cached and updated in place by the
//!   cluster-level mutators ([`Cluster::subscribe`], [`Cluster::try_commit`],
//!   [`Cluster::release`], …);
//! * the shape census is a persistent sorted index updated on host
//!   add/remove, not an O(hosts × shapes) scan per query.
//!
//! [`Cluster::host_mut`] still hands out raw `&mut Host` access (tests and
//! ad-hoc tooling mutate accounting directly through it); doing so marks
//! the cached totals dirty and they are transparently recomputed on the
//! next read or typed mutation, so the fast path stays exact without
//! constraining the slow one.

use crate::host::{Host, HostId, OwnerId};
use crate::resources::{ResourceBundle, ResourceRequest};

/// Placement candidates screened by one shared viability rule (capacity
/// covers the request, host not draining), split by the dynamic SR cap
/// (§3.4.1). The cap is a *preference*: `over_cap` hosts are still usable
/// as a last resort — "the server is rejected in favor of another" — so
/// every placement policy ranks `within_cap` hosts ahead of `over_cap`
/// hosts and orders *within* each segment by its own criterion.
///
/// The buffers are reusable: [`Cluster::viable_hosts_into`] clears and
/// refills them, so a caller that owns one `Viability` screens every
/// placement without allocating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Viability {
    /// Hosts whose post-placement SR stays at or below the cap, ascending
    /// by host id.
    pub within_cap: Vec<HostId>,
    /// Hosts the SR cap forbids (usable only when nothing better exists),
    /// ascending by host id.
    pub over_cap: Vec<HostId>,
}

impl Viability {
    /// Total viable hosts across both segments.
    pub fn len(&self) -> usize {
        self.within_cap.len() + self.over_cap.len()
    }

    /// Whether no host is viable at all.
    pub fn is_empty(&self) -> bool {
        self.within_cap.is_empty() && self.over_cap.is_empty()
    }

    /// All viable hosts, preferred segment first.
    pub fn into_ranked(self) -> Vec<HostId> {
        let mut out = self.within_cap;
        out.extend(self.over_cap);
        out
    }

    /// Empties both segments (keeping their capacity for reuse).
    pub fn clear(&mut self) {
        self.within_cap.clear();
        self.over_cap.clear();
    }
}

/// Reusable scratch for the least-loaded ranking
/// ([`Cluster::subscription_candidates_into`]): decorated `(idle GPUs,
/// SR, id)` keys per SR-cap segment, captured in the same pass as the
/// viability screen so ranking performs no per-host lookups at all.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    within: Vec<(u32, f64, HostId)>,
    over: Vec<(u32, f64, HostId)>,
}

/// The sort key of one census entry; covers every [`ResourceBundle`]
/// field, so it totally orders shapes.
fn census_key(shape: &ResourceBundle) -> (u32, u64, u64) {
    (shape.gpus, shape.millicpus, shape.memory_mb)
}

/// The fleet of GPU servers.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Hosts ascending by id (ids grow monotonically and are never
    /// reused), so lookups binary-search.
    hosts: Vec<Host>,
    next_host_id: HostId,
    /// Persistent shape census, ascending by
    /// `(gpus, millicpus, memory_mb)`; maintained on add/remove.
    census: Vec<(ResourceBundle, u32)>,
    /// Total GPUs across all hosts (`ΣG`). A host's capacity never
    /// changes after creation, so this is always exact.
    total_gpus: u64,
    /// Cached `ΣS` / `ΣC`; exact while `totals_valid`.
    total_subscribed: u64,
    total_committed: u64,
    /// Cleared by [`Cluster::host_mut`] (raw access may change per-host
    /// accounting behind the cluster's back); re-established lazily.
    totals_valid: bool,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::new()
    }
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster {
            hosts: Vec::new(),
            next_host_id: 0,
            census: Vec::new(),
            total_gpus: 0,
            total_subscribed: 0,
            total_committed: 0,
            totals_valid: true,
        }
    }

    /// Creates a cluster of `n` identical hosts.
    pub fn with_hosts(n: usize, capacity: ResourceBundle) -> Self {
        let mut c = Cluster::new();
        for _ in 0..n {
            c.add_host(capacity);
        }
        c
    }

    /// Creates a heterogeneous cluster from `(shape, count)` pairs, in
    /// order — e.g. a fleet mixing 8-GPU trainers with smaller 4-GPU
    /// inference boxes. Host ids are assigned in pair order.
    pub fn with_host_mix(mix: &[(ResourceBundle, u32)]) -> Self {
        let mut c = Cluster::new();
        for &(shape, count) in mix {
            for _ in 0..count {
                c.add_host(shape);
            }
        }
        c
    }

    /// Adds a host, returning its id.
    pub fn add_host(&mut self, capacity: ResourceBundle) -> HostId {
        let id = self.next_host_id;
        self.next_host_id += 1;
        self.hosts.push(Host::new(id, capacity));
        self.total_gpus += u64::from(capacity.gpus);
        match self
            .census
            .binary_search_by_key(&census_key(&capacity), |(s, _)| census_key(s))
        {
            Ok(i) => self.census[i].1 += 1,
            Err(i) => self.census.insert(i, (capacity, 1)),
        }
        id
    }

    /// Removes a host (only sensible when it is idle; the autoscaler drains
    /// first). Returns the host if it existed.
    pub fn remove_host(&mut self, id: HostId) -> Option<Host> {
        let idx = self.host_position(id)?;
        let host = self.hosts.remove(idx);
        let shape = host.capacity();
        self.total_gpus -= u64::from(shape.gpus);
        if self.totals_valid {
            self.total_subscribed -= host.subscribed_gpus();
            self.total_committed -= u64::from(host.committed_gpus());
        }
        let slot = self
            .census
            .binary_search_by_key(&census_key(&shape), |(s, _)| census_key(s))
            .expect("every host's shape is in the census");
        self.census[slot].1 -= 1;
        if self.census[slot].1 == 0 {
            self.census.remove(slot);
        }
        Some(host)
    }

    /// Slab position of host `id` (binary search — the slab is ascending
    /// by id).
    fn host_position(&self, id: HostId) -> Option<usize> {
        self.hosts.binary_search_by_key(&id, Host::id).ok()
    }

    /// All hosts, ascending by id.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Mutable host lookup. Raw access can change per-host accounting the
    /// cluster cannot see, so the cached fleet totals are marked dirty and
    /// recomputed on the next read — prefer the typed mutators
    /// ([`Cluster::subscribe`], [`Cluster::try_commit`], …) on hot paths.
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut Host> {
        let idx = self.host_position(id)?;
        self.totals_valid = false;
        Some(&mut self.hosts[idx])
    }

    /// Shared host lookup.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.host_position(id).map(|idx| &self.hosts[idx])
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Recomputes the cached `ΣS`/`ΣC` totals after raw
    /// [`Cluster::host_mut`] access invalidated them.
    fn revalidate_totals(&mut self) {
        if !self.totals_valid {
            self.total_subscribed = self.hosts.iter().map(Host::subscribed_gpus).sum();
            self.total_committed = self
                .hosts
                .iter()
                .map(|h| u64::from(h.committed_gpus()))
                .sum();
            self.totals_valid = true;
        }
    }

    // ------------------------------------------------------------------
    // Typed mutators: the scheduler's hot path. Each applies the per-host
    // change and the fleet-total delta in O(log hosts), keeping every
    // cluster-wide read O(1).
    // ------------------------------------------------------------------

    /// Registers a replica subscription on `host`. Returns `false` when
    /// the host does not exist.
    pub fn subscribe(&mut self, host: HostId, request: &ResourceRequest) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        self.hosts[idx].subscribe(request);
        self.total_subscribed += u64::from(request.gpus);
        true
    }

    /// Removes a replica subscription from `host`. Returns `false` when
    /// the host does not exist.
    ///
    /// # Panics
    ///
    /// Panics (like [`Host::unsubscribe`]) if the host exists but holds no
    /// matching subscription — that is an accounting bug.
    pub fn unsubscribe(&mut self, host: HostId, request: &ResourceRequest) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        self.hosts[idx].unsubscribe(request);
        self.total_subscribed -= u64::from(request.gpus);
        true
    }

    /// Exclusively binds `request` on `host` for `owner`, writing the
    /// bound GPU device ids into `devices` (cleared first; the buffer is
    /// reusable across calls). Returns `false` — changing nothing — when
    /// the host does not exist or the commit fails.
    pub fn try_commit(
        &mut self,
        host: HostId,
        owner: OwnerId,
        request: &ResourceRequest,
        devices: &mut Vec<u32>,
    ) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        if self.hosts[idx]
            .commit_into(owner, request, devices)
            .is_err()
        {
            return false;
        }
        self.total_committed += u64::from(request.gpus);
        true
    }

    /// Releases `owner`'s commitment on `host`, if any. Returns `false`
    /// when the host does not exist or the owner holds no commitment.
    pub fn release(&mut self, host: HostId, owner: OwnerId) -> bool {
        self.revalidate_totals();
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        if !self.hosts[idx].has_commitment(owner) {
            return false;
        }
        let freed = self.hosts[idx].release(owner);
        self.total_committed -= u64::from(freed.gpus);
        true
    }

    /// Marks/unmarks `host` as draining. Returns `false` when the host
    /// does not exist.
    pub fn set_draining(&mut self, host: HostId, draining: bool) -> bool {
        let Some(idx) = self.host_position(host) else {
            return false;
        };
        self.hosts[idx].set_draining(draining);
        true
    }

    // ------------------------------------------------------------------
    // Fleet-wide reads
    // ------------------------------------------------------------------

    /// Total GPUs across all hosts (`ΣG`).
    pub fn total_gpus(&self) -> u64 {
        self.total_gpus
    }

    /// Total subscribed GPUs across all hosts (`ΣS`).
    pub fn total_subscribed_gpus(&self) -> u64 {
        if self.totals_valid {
            self.total_subscribed
        } else {
            self.hosts.iter().map(Host::subscribed_gpus).sum()
        }
    }

    /// Total GPUs exclusively committed to actively-executing replicas
    /// (`ΣC` in the autoscaler, §3.4.2).
    pub fn total_committed_gpus(&self) -> u64 {
        if self.totals_valid {
            self.total_committed
        } else {
            self.hosts
                .iter()
                .map(|h| u64::from(h.committed_gpus()))
                .sum()
        }
    }

    /// The dynamic cluster-wide SR limit `ΣS / (ΣG · R)` (§3.4.1).
    ///
    /// Returns infinity for an empty/GPU-less cluster so that placement
    /// decisions degrade to capacity checks only.
    pub fn sr_limit(&self, replication_factor: u32) -> f64 {
        let denom = self.total_gpus() * u64::from(replication_factor.max(1));
        if denom == 0 {
            return f64::INFINITY;
        }
        self.total_subscribed_gpus() as f64 / denom as f64
    }

    /// Hosts that could host a new replica subscription of `request`,
    /// ranked by §3.4.1's default policy: hosts whose post-placement SR
    /// stays within `sr_cap` come first (most idle GPUs, then lowest SR),
    /// followed by over-cap hosts ordered by ascending SR. The SR cap is a
    /// *preference* — "the server is rejected in favor of another" — so
    /// when demand outruns supply the cluster oversubscribes beyond the cap
    /// (Fig. 10 shows the cluster-wide SR reaching 3.0) while the
    /// auto-scaler catches up.
    ///
    /// `sr_cap` is typically `max(cluster sr_limit, 1.0)` so an empty
    /// cluster can still accept its first kernels.
    pub fn subscription_candidates(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Vec<HostId> {
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        self.subscription_candidates_into(
            request,
            replication_factor,
            sr_cap,
            &mut scratch,
            &mut out,
        );
        out
    }

    /// Allocation-free form of [`Cluster::subscription_candidates`]: the
    /// screen and the sort keys are captured in one pass over the slab
    /// into `scratch`, and the ranking is written to `out` (cleared
    /// first). A caller that reuses `scratch` and `out` ranks every
    /// placement without allocating.
    pub fn subscription_candidates_into(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        scratch: &mut RankScratch,
        out: &mut Vec<HostId>,
    ) {
        scratch.within.clear();
        scratch.over.clear();
        out.clear();
        let capacity_needed = ResourceBundle::from_request(request);
        for h in &self.hosts {
            if h.is_draining() || !h.capacity().covers(&capacity_needed) {
                continue;
            }
            let keyed = (
                h.idle_gpus(),
                h.subscription_ratio(replication_factor),
                h.id(),
            );
            if request.gpus > 0 && post_sr(h, request, replication_factor) > sr_cap {
                scratch.over.push(keyed);
            } else {
                scratch.within.push(keyed);
            }
        }
        let least_loaded_first = |keyed: &mut Vec<(u32, f64, HostId)>| {
            keyed.sort_by(|a, b| {
                b.0.cmp(&a.0)
                    .then(a.1.partial_cmp(&b.1).expect("SR is finite"))
                    .then(a.2.cmp(&b.2))
            });
        };
        least_loaded_first(&mut scratch.within);
        least_loaded_first(&mut scratch.over);
        out.extend(scratch.within.iter().map(|&(_, _, id)| id));
        out.extend(scratch.over.iter().map(|&(_, _, id)| id));
    }

    /// The single viability rule every placement policy shares: hosts whose
    /// *capacity* covers the request and that are not draining, split into
    /// those the SR cap allows and those it forbids (§3.4.1). CPU-only
    /// requests never count against the cap. Segments are ascending by
    /// host id; policies order within them.
    pub fn viable_hosts(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
    ) -> Viability {
        let mut viable = Viability::default();
        self.viable_hosts_into(request, replication_factor, sr_cap, &mut viable);
        viable
    }

    /// Allocation-free form of [`Cluster::viable_hosts`]: clears and
    /// refills `out`, so a caller that owns the buffer screens every
    /// placement without allocating.
    pub fn viable_hosts_into(
        &self,
        request: &ResourceRequest,
        replication_factor: u32,
        sr_cap: f64,
        out: &mut Viability,
    ) {
        out.clear();
        let capacity_needed = ResourceBundle::from_request(request);
        for h in &self.hosts {
            if h.is_draining() || !h.capacity().covers(&capacity_needed) {
                continue;
            }
            if request.gpus > 0 && post_sr(h, request, replication_factor) > sr_cap {
                out.over_cap.push(h.id());
            } else {
                out.within_cap.push(h.id());
            }
        }
        // `hosts` is ascending by id (ids are never reused and grow
        // monotonically), so the segments inherit that order.
    }

    /// The fleet's shape census: distinct host shapes with their counts,
    /// ascending by `(gpus, millicpus, memory_mb)` — the catalog the
    /// platform hands a shape-aware elasticity policy, so "first covering
    /// shape" means "cheapest covering shape". Served from the persistent
    /// census index (maintained on add/remove), not a fleet scan.
    pub fn shape_census(&self) -> Vec<(ResourceBundle, u32)> {
        self.census.clone()
    }

    /// Hosts with zero replicas and zero commitments — candidates for
    /// scale-in (§3.4.2: "idle servers are those with no active training
    /// kernel replicas").
    pub fn idle_hosts(&self) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.replica_count() == 0 && h.active_commitments() == 0)
            .map(Host::id)
            .collect()
    }
}

/// The SR `host` would have after accepting `request` (§3.4.1).
fn post_sr(h: &Host, request: &ResourceRequest, replication_factor: u32) -> f64 {
    (h.subscribed_gpus() + u64::from(request.gpus)) as f64
        / (u64::from(h.capacity().gpus.max(1)) * u64::from(replication_factor.max(1))) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::CommitError;

    fn gpu_req(gpus: u32) -> ResourceRequest {
        ResourceRequest::new(4000, 16_384, gpus, 16)
    }

    #[test]
    fn add_and_remove_hosts() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_gpus(), 24);
        let removed = c.remove_host(1).unwrap();
        assert_eq!(removed.id(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.remove_host(99).is_none());
        // Ids are never reused.
        let id = c.add_host(ResourceBundle::p3_16xlarge());
        assert_eq!(id, 3);
    }

    #[test]
    fn totals_track_subscriptions_and_commits() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        assert_eq!(c.total_subscribed_gpus(), 6);
        c.host_mut(0).unwrap().commit(7, &gpu_req(4)).unwrap();
        assert_eq!(c.total_committed_gpus(), 4);
        // SR limit: 6 / (16 * 3).
        assert!((c.sr_limit(3) - 6.0 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn typed_mutators_keep_totals_incremental() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        assert!(c.subscribe(0, &gpu_req(4)));
        assert!(c.subscribe(1, &gpu_req(2)));
        assert!(!c.subscribe(99, &gpu_req(1)), "missing host refused");
        assert_eq!(c.total_subscribed_gpus(), 6);

        let mut devices = Vec::new();
        assert!(c.try_commit(0, 7, &gpu_req(4), &mut devices));
        assert_eq!(devices, vec![0, 1, 2, 3]);
        assert!(
            !c.try_commit(0, 7, &gpu_req(1), &mut devices),
            "double commit refused"
        );
        assert!(
            !c.try_commit(99, 8, &gpu_req(1), &mut devices),
            "missing host refused"
        );
        assert_eq!(c.total_committed_gpus(), 4);

        assert!(c.release(0, 7));
        assert!(!c.release(0, 7), "second release refused");
        assert!(!c.release(99, 7));
        assert_eq!(c.total_committed_gpus(), 0);

        assert!(c.unsubscribe(0, &gpu_req(4)));
        assert!(!c.unsubscribe(99, &gpu_req(1)));
        assert_eq!(c.total_subscribed_gpus(), 2);

        assert!(c.set_draining(1, true));
        assert!(c.host(1).unwrap().is_draining());
        assert!(!c.set_draining(99, true));
    }

    #[test]
    fn raw_host_mut_access_self_heals_the_totals() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        assert!(c.subscribe(0, &gpu_req(4)));
        // Raw mutation the cluster cannot observe…
        c.host_mut(1).unwrap().subscribe(&gpu_req(2));
        c.host_mut(1).unwrap().commit(9, &gpu_req(2)).unwrap();
        // …is still reflected exactly in the fleet totals…
        assert_eq!(c.total_subscribed_gpus(), 6);
        assert_eq!(c.total_committed_gpus(), 2);
        // …and typed mutations afterwards stay exact too.
        assert!(c.subscribe(0, &gpu_req(1)));
        assert!(c.release(1, 9));
        assert_eq!(c.total_subscribed_gpus(), 7);
        assert_eq!(c.total_committed_gpus(), 0);
        // Removing a host while dirty keeps totals exact as well.
        c.host_mut(0).unwrap().subscribe(&gpu_req(1));
        c.remove_host(0);
        assert_eq!(c.total_subscribed_gpus(), 2);
    }

    #[test]
    fn empty_cluster_sr_limit_is_infinite() {
        let c = Cluster::new();
        assert!(c.sr_limit(3).is_infinite());
    }

    #[test]
    fn candidates_prefer_least_loaded() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0 busiest, host 2 idle.
        c.host_mut(0).unwrap().commit(1, &gpu_req(6)).unwrap();
        c.host_mut(1).unwrap().commit(2, &gpu_req(3)).unwrap();
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![2, 1, 0]);
    }

    #[test]
    fn candidates_prefer_hosts_within_sr_cap() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        // Host 0 heavily subscribed: S = 24 → SR = 1.0 at R = 3, so another
        // 4-GPU subscription would push it over the cap.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        let ranked = c.subscription_candidates(&gpu_req(4), 3, 1.0);
        assert_eq!(
            ranked,
            vec![1, 0],
            "saturated host ranked last, not dropped"
        );
        // CPU-only kernels are exempt from the SR ordering.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        assert_eq!(c.subscription_candidates(&cpu, 3, 1.0).len(), 2);
    }

    #[test]
    fn candidates_into_reuses_buffers_and_matches_allocating_form() {
        let mut c = Cluster::with_hosts(6, ResourceBundle::p3_16xlarge());
        for i in 0..6u64 {
            for _ in 0..i {
                c.host_mut(i).unwrap().subscribe(&gpu_req(2));
            }
        }
        c.host_mut(3).unwrap().commit(5, &gpu_req(5)).unwrap();
        let mut scratch = RankScratch::default();
        let mut out = Vec::new();
        for req_gpus in [1, 4] {
            let req = gpu_req(req_gpus);
            c.subscription_candidates_into(&req, 3, 1.0, &mut scratch, &mut out);
            assert_eq!(out, c.subscription_candidates(&req, 3, 1.0));
        }
    }

    #[test]
    fn draining_hosts_excluded() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().set_draining(true);
        let ranked = c.subscription_candidates(&gpu_req(1), 3, 1.0);
        assert_eq!(ranked, vec![1]);
    }

    #[test]
    fn oversized_requests_have_no_candidates() {
        let c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        let giant = ResourceRequest::new(1000, 1024, 9, 16);
        assert!(c.subscription_candidates(&giant, 3, 10.0).is_empty());
    }

    #[test]
    fn viable_hosts_splits_on_sr_cap() {
        let mut c = Cluster::with_hosts(3, ResourceBundle::p3_16xlarge());
        // Host 0: S = 24 → another 4-GPU subscription exceeds SR 1.0 at R=3.
        for _ in 0..6 {
            c.host_mut(0).unwrap().subscribe(&gpu_req(4));
        }
        c.host_mut(2).unwrap().set_draining(true);
        let v = c.viable_hosts(&gpu_req(4), 3, 1.0);
        assert_eq!(v.within_cap, vec![1]);
        assert_eq!(v.over_cap, vec![0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.into_ranked(), vec![1, 0]);
        // CPU-only requests are exempt from the cap.
        let cpu = ResourceRequest::new(1000, 1024, 0, 0);
        let v = c.viable_hosts(&cpu, 3, 1.0);
        assert_eq!(v.within_cap, vec![0, 1]);
        assert!(v.over_cap.is_empty());
        // The scratch form refills (not appends) reused buffers.
        let mut buf = Viability::default();
        c.viable_hosts_into(&gpu_req(4), 3, 1.0, &mut buf);
        let first = buf.clone();
        c.viable_hosts_into(&gpu_req(4), 3, 1.0, &mut buf);
        assert_eq!(buf, first);
    }

    #[test]
    fn heterogeneous_mix_builds_in_order() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 2), (small, 3)]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.total_gpus(), 2 * 8 + 3 * 4);
        assert_eq!(c.host(0).unwrap().capacity().gpus, 8);
        assert_eq!(c.host(4).unwrap().capacity().gpus, 4);
    }

    #[test]
    fn shape_census_counts_distinct_shapes() {
        let small = ResourceBundle::new(32_000, 249_856, 4);
        let mut c = Cluster::with_host_mix(&[(ResourceBundle::p3_16xlarge(), 2), (small, 3)]);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3), (ResourceBundle::p3_16xlarge(), 2)],
            "ascending by gpus"
        );
        c.remove_host(0);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3), (ResourceBundle::p3_16xlarge(), 1)]
        );
        c.remove_host(1);
        assert_eq!(
            c.shape_census(),
            vec![(small, 3)],
            "exhausted shapes drop out of the census"
        );
        assert!(Cluster::new().shape_census().is_empty());
    }

    #[test]
    fn idle_host_detection() {
        let mut c = Cluster::with_hosts(2, ResourceBundle::p3_16xlarge());
        c.host_mut(0).unwrap().subscribe(&gpu_req(1));
        assert_eq!(c.idle_hosts(), vec![1]);
    }

    #[test]
    fn oversized_commit_still_errors_through_the_host() {
        let mut c = Cluster::with_hosts(1, ResourceBundle::p3_16xlarge());
        let err = c.host_mut(0).unwrap().commit(1, &gpu_req(99)).unwrap_err();
        assert!(matches!(err, CommitError::Insufficient { .. }));
        let mut devices = vec![7u32];
        assert!(!c.try_commit(0, 1, &gpu_req(99), &mut devices));
        assert!(devices.is_empty(), "failed commit clears the scratch");
    }
}
