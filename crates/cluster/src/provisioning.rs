//! Provisioning-latency models.
//!
//! The evaluation's interactivity results hinge on three latency classes:
//! cold container starts (what Batch pays per cell and NotebookOS pays when
//! the pre-warm pool is exhausted), warm container acquisition, and VM
//! scale-out. The constants below are calibrated to the published behaviour:
//! the paper attributes Batch's multi-second step-1 delays to "on-demand
//! docker container provisioning" and describes cold startup delays as
//! "long" relative to sub-second warm acquisition, with §3.3's host-to-GPU
//! model load taking "up to a couple hundred milliseconds".

use notebookos_des::{Distribution, LogNormal, SimRng, SimTime, Uniform};

/// Samples the latency of every provisioning-flavoured operation in the
/// platform.
#[derive(Debug, Clone)]
pub struct ProvisioningModel {
    cold_container: LogNormal,
    warm_container: LogNormal,
    vm_scale_out: LogNormal,
    network_hop: Uniform,
    gpu_model_load: LogNormal,
    registration: Uniform,
}

impl ProvisioningModel {
    /// The default calibration (see module docs).
    pub fn new() -> Self {
        ProvisioningModel {
            // Cold Docker container + Python runtime + deps: median 18 s,
            // p95 ≈ 45 s (heavy images occasionally much slower).
            cold_container: LogNormal::from_quantiles(0.5, 18.0, 0.95, 45.0),
            // Pre-warmed container handoff: median 350 ms, p95 ≈ 900 ms.
            warm_container: LogNormal::from_quantiles(0.5, 0.35, 0.95, 0.9),
            // EC2 VM provision + Local Scheduler registration: median 95 s,
            // p95 ≈ 180 s.
            vm_scale_out: LogNormal::from_quantiles(0.5, 95.0, 0.95, 180.0),
            // Intra-cluster network hop: 0.2–1.2 ms.
            network_hop: Uniform::new(0.000_2, 0.001_2),
            // Host-memory → GPU model load (§3.3): median 120 ms,
            // p95 ≈ 300 ms ("up to a couple hundred milliseconds").
            gpu_model_load: LogNormal::from_quantiles(0.5, 0.12, 0.95, 0.30),
            // Replica registration with the Local Scheduler: 5–25 ms.
            registration: Uniform::new(0.005, 0.025),
        }
    }

    /// Latency of a cold container start.
    pub fn cold_container_start(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_secs_f64(self.cold_container.sample(rng))
    }

    /// Latency of acquiring a pre-warmed container.
    pub fn warm_container_start(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_secs_f64(self.warm_container.sample(rng))
    }

    /// Latency of provisioning an additional GPU server.
    pub fn vm_scale_out(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_secs_f64(self.vm_scale_out.sample(rng))
    }

    /// Shape-indexed scale-out latency: provisioning a host with `gpus`
    /// GPUs relative to the `reference_gpus` host the base calibration
    /// describes. Smaller hosts image fewer devices and attach less
    /// storage, so they come up proportionally (but sub-linearly) faster;
    /// a host of the reference shape draws **exactly** the base sample —
    /// same RNG consumption, same value — so homogeneous fleets are
    /// unaffected by the shape-aware path.
    pub fn vm_scale_out_for(&self, rng: &mut SimRng, gpus: u32, reference_gpus: u32) -> SimTime {
        if gpus == reference_gpus {
            return self.vm_scale_out(rng);
        }
        let ratio = f64::from(gpus.max(1)) / f64::from(reference_gpus.max(1));
        let factor = 0.5 + 0.5 * ratio;
        SimTime::from_secs_f64(self.vm_scale_out.sample(rng) * factor)
    }

    /// One network hop (client ↔ Jupyter Server ↔ Global Scheduler ↔ Local
    /// Scheduler ↔ replica).
    pub fn network_hop(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_secs_f64(self.network_hop.sample(rng))
    }

    /// Loading model parameters from host memory onto the allocated GPUs
    /// before execution (§3.3) — charged on the critical path.
    pub fn gpu_model_load(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_secs_f64(self.gpu_model_load.sample(rng))
    }

    /// Replica registration with its Local Scheduler.
    pub fn registration(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_secs_f64(self.registration.sample(rng))
    }
}

impl Default for ProvisioningModel {
    fn default() -> Self {
        ProvisioningModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_of(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    }

    #[test]
    fn cold_starts_dwarf_warm_starts() {
        let model = ProvisioningModel::new();
        let mut rng = SimRng::seed(1);
        let cold: Vec<f64> = (0..2000)
            .map(|_| model.cold_container_start(&mut rng).as_secs_f64())
            .collect();
        let warm: Vec<f64> = (0..2000)
            .map(|_| model.warm_container_start(&mut rng).as_secs_f64())
            .collect();
        let cold_med = median_of(cold);
        let warm_med = median_of(warm);
        assert!(
            cold_med > 20.0 * warm_med,
            "cold {cold_med:.2}s vs warm {warm_med:.2}s"
        );
        assert!(
            (cold_med / 18.0 - 1.0).abs() < 0.15,
            "cold median {cold_med:.2}"
        );
    }

    #[test]
    fn scale_out_is_minutes_scale() {
        let model = ProvisioningModel::new();
        let mut rng = SimRng::seed(2);
        let med = median_of(
            (0..2000)
                .map(|_| model.vm_scale_out(&mut rng).as_secs_f64())
                .collect(),
        );
        assert!((60.0..150.0).contains(&med), "scale-out median {med:.1}");
    }

    #[test]
    fn shaped_scale_out_matches_reference_bit_for_bit() {
        let model = ProvisioningModel::new();
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..200 {
            assert_eq!(
                model.vm_scale_out_for(&mut a, 8, 8),
                model.vm_scale_out(&mut b)
            );
        }
    }

    #[test]
    fn smaller_shapes_provision_faster_on_average() {
        let model = ProvisioningModel::new();
        let mut rng = SimRng::seed(8);
        let small = median_of(
            (0..2000)
                .map(|_| model.vm_scale_out_for(&mut rng, 4, 8).as_secs_f64())
                .collect(),
        );
        let mut rng = SimRng::seed(8);
        let full = median_of(
            (0..2000)
                .map(|_| model.vm_scale_out_for(&mut rng, 8, 8).as_secs_f64())
                .collect(),
        );
        assert!(small < full, "4-GPU {small:.1}s vs 8-GPU {full:.1}s");
        assert!(small > full * 0.5, "sub-linear, not proportional");
    }

    #[test]
    fn hops_are_sub_two_millisecond() {
        let model = ProvisioningModel::new();
        let mut rng = SimRng::seed(3);
        for _ in 0..1000 {
            let hop = model.network_hop(&mut rng);
            assert!(hop >= SimTime::from_micros(200));
            assert!(hop <= SimTime::from_micros(1200));
        }
    }

    #[test]
    fn gpu_model_load_matches_paper_claim() {
        // §3.3: "typically only takes up to a couple hundred milliseconds".
        let model = ProvisioningModel::new();
        let mut rng = SimRng::seed(4);
        let med = median_of(
            (0..2000)
                .map(|_| model.gpu_model_load(&mut rng).as_secs_f64())
                .collect(),
        );
        assert!((0.08..0.20).contains(&med), "load median {med:.3}");
    }
}
