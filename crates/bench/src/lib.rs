//! Shared support for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each `fig*`/`table*` binary regenerates one evaluation artifact:
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin fig08
//! ```
//!
//! `repro_all` regenerates every artifact, fanning the regenerators out on
//! the sweep engine's worker pool. The Criterion benches (`cargo bench`)
//! measure protocol and scheduling hot paths plus the DESIGN.md ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use notebookos_cluster::ResourceBundle;
use notebookos_core::sweep::{self, Scenario, SweepJob};
use notebookos_core::{Platform, PlatformConfig, PolicyKind, RunMetrics};
use notebookos_trace::{generate, ArrivalPattern, SyntheticConfig, WorkloadTrace};

pub mod balance;
pub mod chaos;
pub mod serve;
pub mod sweep_cli;

/// The seed every figure uses, so artifacts are mutually consistent.
pub const EVAL_SEED: u64 = 2026;

// ----------------------------------------------------------------------
// Elasticity-study workloads, shared by `elasticity_sweep` (per-policy
// comparison) and `sweep_shard` (placement × elasticity interaction).
// ----------------------------------------------------------------------

/// Base configuration for elasticity studies: the NotebookOS evaluation
/// setup with the pre-warm reconcile loop enabled (the control plane
/// under test).
pub fn elastic_config(policy: PolicyKind) -> PlatformConfig {
    let mut config = PlatformConfig::evaluation(policy);
    config.autoscale.prewarm_reconcile_interval_s = Some(120.0);
    config
}

/// Smoke-mode base configuration: shrinks the fleet floor so
/// quarter-scale workloads still exercise scale-out and scale-in.
pub fn elastic_smoke_config(policy: PolicyKind) -> PlatformConfig {
    let mut config = elastic_config(policy);
    config.initial_hosts = 3;
    config.autoscale.min_hosts = 2;
    config.autoscale.scaling_buffer_hosts = 0;
    config
}

/// CI-speed flash-crowd scenario: the excerpt's burst shape at
/// quarter-scale population and window.
pub fn smoke_flash_crowd() -> Scenario {
    Scenario::new(
        "flash-crowd",
        SyntheticConfig {
            sessions: 18,
            span_s: 3.0 * 3600.0,
            ..SyntheticConfig::flash_crowd_17_5h()
        },
    )
}

/// CI-speed diurnal scenario: hour-long day/night cycles with enough
/// short-lived sessions that the fleet repeatedly grows and shrinks.
pub fn smoke_diurnal() -> Scenario {
    Scenario::new(
        "diurnal",
        SyntheticConfig {
            sessions: 24,
            span_s: 3.0 * 3600.0,
            long_lived_fraction: 0.4,
            arrival: ArrivalPattern::Diurnal {
                period_s: 3600.0,
                peak_to_trough: 4.0,
            },
            ..SyntheticConfig::excerpt_17_5h()
        },
    )
}

/// CI-speed heterogeneous-fleet scenario: mostly-small kernels with an
/// 8-GPU tail on a tiny mixed fleet — tick deficits spill into 4-GPU
/// boxes while 8-GPU shortfalls pull full trainers, the workload both
/// the shape-aware elasticity regression and the placement interaction
/// study lean on.
pub fn smoke_heterogeneous() -> Scenario {
    Scenario::new(
        "heterogeneous-hosts",
        SyntheticConfig {
            sessions: 40,
            span_s: 3.0 * 3600.0,
            gpu_active_fraction: 0.7,
            long_lived_fraction: 0.9,
            gpu_demand: vec![(1, 0.6), (2, 0.25), (8, 0.15)],
            arrival: ArrivalPattern::FlashCrowd {
                waves: 2,
                wave_width_s: 600.0,
            },
            popularity: Default::default(),
        },
    )
    .with_host_mix(vec![
        (ResourceBundle::p3_16xlarge(), 2),
        (ResourceBundle::new(32_000, 249_856, 4), 2),
    ])
}

/// A fleet of `hosts` 8-GPU servers with uneven subscriptions (skewed by
/// `i % 7`) and commitments (every third host), so placement rankings do
/// real sorting work — the shared fixture behind the `platform_bench`
/// placement benches and the `perf_bench` bin (the two must measure the
/// same fleet for the committed `BENCH_pr5.json` numbers to stay
/// comparable).
pub fn loaded_cluster(hosts: usize) -> notebookos_cluster::Cluster {
    use notebookos_cluster::{Cluster, HostMutation, ResourceRequest};
    let mut cluster = Cluster::with_hosts(hosts, ResourceBundle::p3_16xlarge());
    // Batch-applied typed mutations keep the placement index incremental —
    // raw `host_mut` churn here would dirty it and make the first measured
    // query pay the O(n log n) rebuild instead of steady-state cost.
    let mut batch = Vec::new();
    for i in 0..hosts {
        for _ in 0..(i % 7) {
            batch.push(HostMutation::Subscribe {
                host: i as u64,
                request: ResourceRequest::one_gpu(),
            });
        }
        if i % 3 == 0 {
            batch.push(HostMutation::Commit {
                host: i as u64,
                owner: 1_000_000 + i as u64,
                request: ResourceRequest::one_gpu(),
            });
        }
    }
    let applied = cluster.apply_batch(batch);
    assert!(applied > 0 || hosts <= 1, "fixture mutations all applied");
    cluster
}

/// The 17.5-hour AdobeTrace excerpt (§5.2's prototype workload).
pub fn excerpt_trace() -> WorkloadTrace {
    generate(&SyntheticConfig::excerpt_17_5h(), EVAL_SEED)
}

/// The 90-day summer workload (§5.5's simulation study).
pub fn summer_trace() -> WorkloadTrace {
    generate(&SyntheticConfig::summer_90d(), EVAL_SEED)
}

/// Runs one policy over a trace with the evaluation configuration.
pub fn run_policy(policy: PolicyKind, trace: &WorkloadTrace) -> RunMetrics {
    let mut config = PlatformConfig::evaluation(policy);
    config.seed = EVAL_SEED;
    Platform::run(config, trace.clone())
}

/// Runs all four policies over a trace (Reservation, Batch, NotebookOS,
/// LCP — the paper's comparison set) in parallel on the sweep engine's
/// worker pool. Per-policy results are identical to sequential
/// [`run_policy`] calls; only wall-clock changes.
pub fn run_all_policies(trace: &WorkloadTrace) -> Vec<(PolicyKind, RunMetrics)> {
    let shared = std::sync::Arc::new(trace.clone());
    let jobs: Vec<SweepJob> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            SweepJob::new(
                p,
                EVAL_SEED,
                PlatformConfig::evaluation(p),
                std::sync::Arc::clone(&shared),
            )
        })
        .collect();
    let metrics = sweep::run_jobs(jobs, 0);
    PolicyKind::ALL.into_iter().zip(metrics).collect()
}

/// Formats a float for table cells.
pub fn fmt(v: f64) -> String {
    notebookos_metrics::fmt_num(v)
}

/// Formats a gauge value with zero decimals, normalizing `-0`.
pub fn fmt0(v: f64) -> String {
    let v = if v.abs() < 1e-9 { 0.0 } else { v };
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excerpt_trace_is_reproducible() {
        assert_eq!(excerpt_trace(), excerpt_trace());
        assert!(excerpt_trace().total_events() > 300);
    }

    #[test]
    fn run_policy_produces_metrics() {
        let trace = generate(&SyntheticConfig::smoke(), EVAL_SEED);
        let m = run_policy(PolicyKind::NotebookOs, &trace);
        assert!(m.counters.executions > 0);
    }

    #[test]
    fn parallel_policy_sweep_matches_sequential() {
        let trace = generate(&SyntheticConfig::smoke(), EVAL_SEED);
        for (policy, parallel) in run_all_policies(&trace) {
            assert_eq!(
                parallel,
                run_policy(policy, &trace),
                "{policy}: sweep-produced metrics must be bit-identical"
            );
        }
    }
}
