//! Shared support for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Each `fig*`/`table*` binary regenerates one evaluation artifact:
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin fig08
//! ```
//!
//! `repro_all` regenerates every artifact, fanning the regenerators out on
//! the sweep engine's worker pool. The Criterion benches (`cargo bench`)
//! measure protocol and scheduling hot paths plus the DESIGN.md ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use notebookos_core::sweep::{self, SweepJob};
use notebookos_core::{Platform, PlatformConfig, PolicyKind, RunMetrics};
use notebookos_trace::{generate, SyntheticConfig, WorkloadTrace};

/// The seed every figure uses, so artifacts are mutually consistent.
pub const EVAL_SEED: u64 = 2026;

/// The 17.5-hour AdobeTrace excerpt (§5.2's prototype workload).
pub fn excerpt_trace() -> WorkloadTrace {
    generate(&SyntheticConfig::excerpt_17_5h(), EVAL_SEED)
}

/// The 90-day summer workload (§5.5's simulation study).
pub fn summer_trace() -> WorkloadTrace {
    generate(&SyntheticConfig::summer_90d(), EVAL_SEED)
}

/// Runs one policy over a trace with the evaluation configuration.
pub fn run_policy(policy: PolicyKind, trace: &WorkloadTrace) -> RunMetrics {
    let mut config = PlatformConfig::evaluation(policy);
    config.seed = EVAL_SEED;
    Platform::run(config, trace.clone())
}

/// Runs all four policies over a trace (Reservation, Batch, NotebookOS,
/// LCP — the paper's comparison set) in parallel on the sweep engine's
/// worker pool. Per-policy results are identical to sequential
/// [`run_policy`] calls; only wall-clock changes.
pub fn run_all_policies(trace: &WorkloadTrace) -> Vec<(PolicyKind, RunMetrics)> {
    let shared = std::sync::Arc::new(trace.clone());
    let jobs: Vec<SweepJob> = PolicyKind::ALL
        .iter()
        .map(|&p| {
            SweepJob::new(
                p,
                EVAL_SEED,
                PlatformConfig::evaluation(p),
                std::sync::Arc::clone(&shared),
            )
        })
        .collect();
    let metrics = sweep::run_jobs(jobs, 0);
    PolicyKind::ALL.into_iter().zip(metrics).collect()
}

/// Formats a float for table cells.
pub fn fmt(v: f64) -> String {
    notebookos_metrics::fmt_num(v)
}

/// Formats a gauge value with zero decimals, normalizing `-0`.
pub fn fmt0(v: f64) -> String {
    let v = if v.abs() < 1e-9 { 0.0 } else { v };
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excerpt_trace_is_reproducible() {
        assert_eq!(excerpt_trace(), excerpt_trace());
        assert!(excerpt_trace().total_events() > 300);
    }

    #[test]
    fn run_policy_produces_metrics() {
        let trace = generate(&SyntheticConfig::smoke(), EVAL_SEED);
        let m = run_policy(PolicyKind::NotebookOs, &trace);
        assert!(m.counters.executions > 0);
    }

    #[test]
    fn parallel_policy_sweep_matches_sequential() {
        let trace = generate(&SyntheticConfig::smoke(), EVAL_SEED);
        for (policy, parallel) in run_all_policies(&trace) {
            assert_eq!(
                parallel,
                run_policy(policy, &trace),
                "{policy}: sweep-produced metrics must be bit-identical"
            );
        }
    }
}
