//! The live-service load generator: replays a time-compressed synthetic
//! trace against the [`LiveGateway`] through whichever
//! [`Scheduler`] the caller supplies.
//!
//! The serving loop is scheduler-agnostic by construction: every session
//! start/end and cell submission becomes a [`ServeEv`] with a deadline,
//! and [`run_serve`] reacts to events as they pop. Under a
//! [`DesScheduler`](notebookos_des::DesScheduler) the whole run completes
//! in microseconds of wall time (how the tests drive it); under a
//! [`RealTimeScheduler`](notebookos_des::RealTimeScheduler) the same loop
//! serves actual wall-clock Jupyter wire traffic (how the `serve` bin
//! drives it). The only difference is which scheduler the caller passes.
//!
//! Traffic comes from the calibrated [`notebookos_trace`] generators: an
//! AdobeTrace-shaped workload for `--users` sessions is generated over
//! its natural hour-scale window, then compressed onto the requested
//! serving window, with per-cell running times capped so executions
//! complete within the run.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use notebookos_core::placement_service::{
    drain_bucket_label, PlacementService, PlacementServiceStats,
};
use notebookos_core::serve::{client_request, GatewayStats, LiveGateway};
use notebookos_des::{Scheduler, SimTime};
use notebookos_jupyter::{Json, KernelResourceSpec, MsgIdGen, WireEndpoint};
use notebookos_metrics::Cdf;
use notebookos_trace::{generate, Popularity, SyntheticConfig, WorkloadTrace};

/// Events of the serving loop. The trace pre-schedules session lifecycles
/// and submissions; completions and gauge ticks are scheduled as the run
/// unfolds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEv {
    /// A user's session begins (kernel launch through the control plane).
    SessionStart(usize),
    /// A user's session ends (deferred while a cell is still running).
    SessionEnd(usize),
    /// A user submits a cell with the given (compressed) running time.
    Submit {
        /// The submitting user.
        user: usize,
        /// Compressed cell running time.
        duration: SimTime,
    },
    /// A fanned-out execution reaches its completion deadline.
    ExecDone {
        /// The user whose cell completes.
        user: usize,
        /// The request's message id ([`LiveGateway::finish_execution`]).
        msg_id: String,
    },
    /// Periodic gauge sample (sessions, in-flight, viable hosts).
    ProgressTick,
}

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Concurrent users (one session each).
    pub users: usize,
    /// Serving window the trace is compressed onto.
    pub duration: SimTime,
    /// GPU servers in the fleet.
    pub hosts: usize,
    /// Replicas per kernel.
    pub replication_factor: u32,
    /// Trace-generation seed.
    pub seed: u64,
    /// Cap on a compressed cell's running time, so executions finish
    /// within the window.
    pub max_cell: SimTime,
    /// Gauge sampling interval.
    pub tick: SimTime,
    /// Zipf exponent for per-user popularity skew (`None` = uniform, the
    /// calibrated default; `Some(theta)` makes low-rank users hot).
    pub skew: Option<f64>,
}

impl ServeOpts {
    /// Defaults: 8 users over 10 s on 8 hosts, R = 3, 250 ms cell cap.
    pub fn new(users: usize, duration: SimTime) -> Self {
        ServeOpts {
            users,
            duration,
            hosts: 8,
            replication_factor: 3,
            seed: crate::EVAL_SEED,
            max_cell: SimTime::from_millis(250),
            tick: SimTime::from_millis(500),
            skew: None,
        }
    }

    /// CI-speed smoke run: 4 users over 3 s on 6 hosts.
    pub fn smoke() -> Self {
        let mut opts = ServeOpts::new(4, SimTime::from_secs(3));
        opts.hosts = 6;
        opts
    }
}

/// What a serving run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Configured users.
    pub users: usize,
    /// Sessions whose kernel launched.
    pub sessions_started: u64,
    /// Sessions ended (their kernels shut down).
    pub sessions_ended: u64,
    /// Peak concurrently live sessions.
    pub peak_sessions: usize,
    /// Cell executions completed (merged reply received).
    pub executions: u64,
    /// Completed executions per logical second.
    pub execs_per_sec: f64,
    /// p50 end-to-end request latency (submit → merged reply), ms.
    pub latency_p50_ms: f64,
    /// p99 end-to-end request latency, ms.
    pub latency_p99_ms: f64,
    /// Mean end-to-end request latency, ms.
    pub latency_mean_ms: f64,
    /// Session starts refused for lack of viable hosts.
    pub shortfalls: u64,
    /// Submissions dropped (inactive session or gateway rejection).
    pub dropped: u64,
    /// Logical time the run spanned (last event), seconds.
    pub logical_secs: f64,
    /// The gateway's wire counters.
    pub gateway: GatewayStats,
    /// Wire messages the client side sent / received.
    pub client_sent: u64,
    /// Wire messages the client side received and verified.
    pub client_received: u64,
    /// Smallest viable-host gauge sample observed (one-GPU request).
    pub min_viable_hosts: usize,
    /// Gauge samples taken.
    pub gauge_samples: u64,
    /// Every end-to-end request latency, ms. Percentile fields above are
    /// derived from this; keeping the full distribution lets sharded runs
    /// merge per-shard reports losslessly via [`Cdf::merge`] and lets the
    /// determinism tests compare latency *multisets*, not just summaries.
    pub latency: Cdf,
}

impl ServeReport {
    /// Serializes the report for the `--out` artifact.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("users", self.users as u64)
            .with("sessions_started", self.sessions_started)
            .with("sessions_ended", self.sessions_ended)
            .with("peak_sessions", self.peak_sessions as u64)
            .with("executions", self.executions)
            .with("execs_per_sec", self.execs_per_sec)
            .with("latency_p50_ms", self.latency_p50_ms)
            .with("latency_p99_ms", self.latency_p99_ms)
            .with("latency_mean_ms", self.latency_mean_ms)
            .with("shortfalls", self.shortfalls)
            .with("dropped", self.dropped)
            .with("logical_secs", self.logical_secs)
            .with("wire_accepted", self.gateway.accepted)
            .with("wire_rejected", self.gateway.rejected)
            .with("wire_replies", self.gateway.replies)
            .with("wire_fan_out_copies", self.gateway.fan_out_copies)
            .with("client_sent", self.client_sent)
            .with("client_received", self.client_received)
            .with("min_viable_hosts", self.min_viable_hosts as u64)
            .with("gauge_samples", self.gauge_samples)
            .with(
                "latency_ms",
                self.latency
                    .canonical_samples()
                    .into_iter()
                    .map(Json::from)
                    .collect::<Vec<Json>>(),
            )
    }

    /// The fields the determinism contract says must be invariant under
    /// the shard count: everything except `peak_sessions` (per-shard
    /// peaks sum to an upper bound, not the true global peak) and
    /// `gauge_samples` (each shard runs its own tick chain), which are
    /// zeroed. Compare these views to prove `--shards N` ≡ `--shards 1`.
    pub fn shard_invariant_view(&self) -> ServeReport {
        let mut view = self.clone();
        view.peak_sessions = 0;
        view.gauge_samples = 0;
        view
    }

    /// A zeroed report covering `owned_users` users — the accumulator
    /// both the static loop and the balanced shard cores start from.
    pub(crate) fn empty(owned_users: usize) -> ServeReport {
        ServeReport {
            users: owned_users,
            sessions_started: 0,
            sessions_ended: 0,
            peak_sessions: 0,
            executions: 0,
            execs_per_sec: 0.0,
            latency_p50_ms: 0.0,
            latency_p99_ms: 0.0,
            latency_mean_ms: 0.0,
            shortfalls: 0,
            dropped: 0,
            logical_secs: 0.0,
            gateway: GatewayStats::default(),
            client_sent: 0,
            client_received: 0,
            min_viable_hosts: usize::MAX,
            gauge_samples: 0,
            latency: Cdf::new("request-latency-ms"),
        }
    }

    /// Finalizes derived fields: resolves the never-sampled gauge
    /// sentinel, computes percentiles from the latency multiset, and the
    /// throughput rate from the logical span.
    pub(crate) fn finish(&mut self) {
        if self.min_viable_hosts == usize::MAX {
            self.min_viable_hosts = 0;
        }
        if !self.latency.is_empty() {
            self.latency_p50_ms = self.latency.percentile(50.0);
            self.latency_p99_ms = self.latency.percentile(99.0);
            self.latency_mean_ms = self.latency.mean();
        }
        if self.logical_secs > 0.0 {
            self.execs_per_sec = self.executions as f64 / self.logical_secs;
        }
    }

    /// Renders the human-readable summary the `serve` bin prints.
    pub fn render(&self) -> String {
        format!(
            "sessions: {} started, {} ended, peak {} concurrent\n\
             executions: {} completed ({:.1}/s over {:.2}s logical)\n\
             latency: p50 {:.1} ms, p99 {:.1} ms, mean {:.1} ms\n\
             wire: {} accepted, {} fan-out copies, {} replies, {} rejected\n\
             capacity: min {} viable hosts across {} samples; \
             {} shortfalls, {} dropped",
            self.sessions_started,
            self.sessions_ended,
            self.peak_sessions,
            self.executions,
            self.execs_per_sec,
            self.logical_secs,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.latency_mean_ms,
            self.gateway.accepted,
            self.gateway.fan_out_copies,
            self.gateway.replies,
            self.gateway.rejected,
            self.min_viable_hosts,
            self.gauge_samples,
            self.shortfalls,
            self.dropped,
        )
    }
}

/// Per-user client state.
#[derive(Debug, Default)]
pub(crate) struct UserState {
    pub(crate) kernel_id: String,
    pub(crate) active: bool,
    pub(crate) busy: bool,
    pub(crate) queued: VecDeque<SimTime>,
    pub(crate) end_requested: bool,
}

/// A shard's occupancy gauge: live sessions plus queued and in-flight
/// executions — the load signal the balanced mode equalizes. The static
/// path meters it too (purely local bookkeeping, so the static loop stays
/// bit-identical) so balanced-vs-static occupancy is an apples-to-apples
/// comparison in the coordination decomposition.
#[derive(Debug, Default, Clone)]
pub(crate) struct OccupancyMeter {
    /// Current occupancy.
    pub(crate) current: u64,
    /// High-water mark.
    pub(crate) max: u64,
    /// `(logical_secs, occupancy)` samples, taken at gauge ticks.
    pub(crate) timeline: Vec<(f64, u64)>,
}

impl OccupancyMeter {
    #[inline]
    pub(crate) fn add(&mut self, delta: i64) {
        self.current = self.current.saturating_add_signed(delta);
        self.max = self.max.max(self.current);
    }

    pub(crate) fn sample(&mut self, now: SimTime) {
        self.timeline.push((now.as_secs_f64(), self.current));
    }
}

/// The compressed per-user workload plus the resource spec of each
/// session, derived from one generated trace.
#[derive(Debug)]
pub(crate) struct CompressedTrace {
    pub(crate) specs: Vec<KernelResourceSpec>,
    /// `(deadline, event)` pairs to pre-schedule.
    pub(crate) events: Vec<(SimTime, ServeEv)>,
}

fn compress(trace: &WorkloadTrace, opts: &ServeOpts) -> CompressedTrace {
    let span_s = trace.span_s().max(1.0);
    let factor = opts.duration.as_secs_f64() / span_s;
    let mut specs = Vec::with_capacity(trace.sessions.len());
    let mut events = Vec::new();
    for (user, session) in trace.sessions.iter().enumerate() {
        specs.push(KernelResourceSpec {
            millicpus: session.millicpus as u32,
            memory_mb: session.memory_mb as u32,
            gpus: session.gpus,
            vram_gb: session.vram_gb,
        });
        let start = SimTime::from_secs_f64(session.start_s * factor);
        let end = SimTime::from_secs_f64(session.end_s * factor).max(start);
        events.push((start, ServeEv::SessionStart(user)));
        events.push((end, ServeEv::SessionEnd(user)));
        for event in &session.events {
            let submit = SimTime::from_secs_f64(event.submit_s * factor);
            let duration = SimTime::from_secs_f64(event.duration_s * factor)
                .min(opts.max_cell)
                .max(SimTime::from_millis(1));
            events.push((submit, ServeEv::Submit { user, duration }));
        }
    }
    CompressedTrace { specs, events }
}

/// Generates the workload once: one AdobeTrace-shaped hour, compressed
/// onto the serving window. Every user submits (gpu_active_fraction 1.0):
/// a load generator that mostly idles would make smoke runs flaky.
pub(crate) fn compressed_trace(opts: &ServeOpts) -> CompressedTrace {
    let config = SyntheticConfig {
        sessions: opts.users,
        span_s: 3_600.0,
        gpu_active_fraction: 1.0,
        long_lived_fraction: 0.9,
        popularity: match opts.skew {
            Some(theta) => Popularity::Zipf { theta },
            None => Popularity::Uniform,
        },
        ..SyntheticConfig::smoke()
    };
    let trace = generate(&config, opts.seed);
    compress(&trace, opts)
}

/// Runs the serving loop to completion under the supplied scheduler.
///
/// The run ends when the event queue drains: all sessions have started,
/// every accepted execution has completed, and gauge ticks have stopped
/// (they are not scheduled past the serving window). Identical inputs
/// produce identical reports under any scheduler, because all timing
/// flows through `sched`.
pub fn run_serve(opts: &ServeOpts, sched: &mut dyn Scheduler<ServeEv>) -> ServeReport {
    let compressed = compressed_trace(opts);
    let (mut gateway, mut client) = LiveGateway::new(
        opts.hosts,
        notebookos_cluster::ResourceBundle::p3_16xlarge(),
        opts.replication_factor,
    );
    let mut meter = OccupancyMeter::default();
    run_loop(
        opts,
        &compressed.specs,
        compressed.events,
        opts.users,
        &mut gateway,
        &mut client,
        sched,
        &mut meter,
    )
}

/// One gateway's serving loop: the single-threaded core that both
/// [`run_serve`] (one gateway over everything) and [`run_serve_sharded`]
/// (one gateway per shard, each over its own session partition) drive.
/// `events` are this gateway's pre-scheduled trace events; `owned_users`
/// is how many of the trace's users they cover (reported as `users`).
/// No locks anywhere: the loop owns its gateway, wire, scheduler, and
/// latency accumulator outright.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    opts: &ServeOpts,
    specs: &[KernelResourceSpec],
    events: Vec<(SimTime, ServeEv)>,
    owned_users: usize,
    gateway: &mut LiveGateway,
    client: &mut WireEndpoint,
    sched: &mut dyn Scheduler<ServeEv>,
    meter: &mut OccupancyMeter,
) -> ServeReport {
    // Indexed by global user id, so shard partitions need no remapping.
    let mut users: Vec<UserState> = (0..opts.users).map(|_| UserState::default()).collect();
    let mut ids = MsgIdGen::new("cell");
    let mut in_flight: HashMap<String, (usize, SimTime)> = HashMap::new();

    let mut report = ServeReport::empty(owned_users);
    let gauge_spec = gauge_probe_spec();

    for (deadline, event) in events {
        sched.schedule(deadline, event);
    }
    sched.schedule(SimTime::ZERO, ServeEv::ProgressTick);

    while let Some((now, event)) = sched.pop_next() {
        match event {
            ServeEv::SessionStart(user) => {
                let session_id = format!("user-{user}");
                match gateway.start_session(&session_id, specs[user], now) {
                    Ok(info) => {
                        users[user].kernel_id = info.kernel_id;
                        users[user].active = true;
                        report.sessions_started += 1;
                        report.peak_sessions = report.peak_sessions.max(gateway.session_count());
                        meter.add(1);
                    }
                    Err(_) => report.shortfalls += 1,
                }
            }
            ServeEv::SessionEnd(user) => {
                let state = &mut users[user];
                if !state.active {
                    continue;
                }
                if state.busy || !state.queued.is_empty() {
                    state.end_requested = true;
                } else {
                    state.active = false;
                    gateway.end_session(&format!("user-{user}"));
                    report.sessions_ended += 1;
                    meter.add(-1);
                }
            }
            ServeEv::Submit { user, duration } => {
                if !users[user].active {
                    report.dropped += 1;
                } else if users[user].busy {
                    // §2.3.2: a user's cells never overlap — queue behind
                    // the running one.
                    users[user].queued.push_back(duration);
                    meter.add(1);
                } else {
                    meter.add(1);
                    submit_cell(
                        user,
                        duration,
                        now,
                        &mut users,
                        &mut ids,
                        client,
                        gateway,
                        &mut in_flight,
                        &mut report,
                        sched,
                        meter,
                    );
                }
            }
            ServeEv::ExecDone { user, msg_id } => {
                gateway.finish_execution(&msg_id, now);
                let (replies, bad) = client.drain();
                report.dropped += bad as u64;
                for (_, reply) in replies {
                    let Some(parent) = reply.parent.as_ref() else {
                        continue;
                    };
                    let Some((owner, submitted)) = in_flight.remove(&parent.msg_id) else {
                        continue;
                    };
                    report.executions += 1;
                    report
                        .latency
                        .record(now.saturating_sub(submitted).as_millis_f64());
                    users[owner].busy = false;
                    meter.add(-1);
                }
                // The user is free again: drain their queue, then honor a
                // deferred session end.
                if !users[user].busy {
                    if let Some(duration) = users[user].queued.pop_front() {
                        // Already metered when it queued; `submit_cell`
                        // un-meters it if the gateway drops it.
                        submit_cell(
                            user,
                            duration,
                            now,
                            &mut users,
                            &mut ids,
                            client,
                            gateway,
                            &mut in_flight,
                            &mut report,
                            sched,
                            meter,
                        );
                    } else if users[user].end_requested {
                        users[user].active = false;
                        gateway.end_session(&format!("user-{user}"));
                        report.sessions_ended += 1;
                        meter.add(-1);
                    }
                }
            }
            ServeEv::ProgressTick => {
                report.gauge_samples += 1;
                report.min_viable_hosts = report
                    .min_viable_hosts
                    .min(gateway.viable_count(gauge_spec));
                report.peak_sessions = report.peak_sessions.max(gateway.session_count());
                meter.sample(now);
                if now + opts.tick <= opts.duration {
                    sched.schedule_in(opts.tick, ServeEv::ProgressTick);
                }
            }
        }
        report.logical_secs = now.as_secs_f64();
    }

    report.finish();
    report.gateway = gateway.stats();
    report.client_sent = client.sent();
    report.client_received = client.received();
    report
}

/// The one-GPU probe request the viable-host gauge samples.
pub(crate) fn gauge_probe_spec() -> KernelResourceSpec {
    KernelResourceSpec {
        millicpus: 4_000,
        memory_mb: 16_384,
        gpus: 1,
        vram_gb: 16,
    }
}

/// Sends one cell over the wire and schedules its completion deadline.
/// The caller has already metered this execution; a gateway drop
/// un-meters it here.
#[allow(clippy::too_many_arguments)]
fn submit_cell(
    user: usize,
    duration: SimTime,
    now: SimTime,
    users: &mut [UserState],
    ids: &mut MsgIdGen,
    client: &mut WireEndpoint,
    gateway: &mut LiveGateway,
    in_flight: &mut HashMap<String, (usize, SimTime)>,
    report: &mut ServeReport,
    sched: &mut dyn Scheduler<ServeEv>,
    meter: &mut OccupancyMeter,
) {
    let msg_id = ids.next_id();
    let session_id = format!("user-{user}");
    let request = client_request(
        &msg_id,
        &session_id,
        &users[user].kernel_id,
        "model.fit()",
        duration,
        now,
    );
    client.send(&[], &request);
    in_flight.insert(msg_id.clone(), (user, now));
    users[user].busy = true;
    let accepted = gateway.pump(now);
    let mut ours = false;
    for execution in accepted {
        sched.schedule_in(
            execution.duration,
            ServeEv::ExecDone {
                user,
                msg_id: execution.msg_id.clone(),
            },
        );
        ours |= execution.msg_id == msg_id;
    }
    if !ours {
        in_flight.remove(&msg_id);
        users[user].busy = false;
        report.dropped += 1;
        meter.add(-1);
    }
}

/// Maps a kernel id onto one of `shards` gateway shards (FNV-1a 64-bit).
/// Stable across processes and platforms, so a router in front of the
/// shards and the shards themselves always agree — and deterministic, so
/// the same trace partitions identically on every run.
pub fn shard_of(kernel_id: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in kernel_id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// FNV-1a over a user id's little-endian bytes — the numeric partition
/// key. The sharded loops hash the integer id directly instead of
/// formatting `"kernel-user-{user}"` per event (the string render +
/// 16-plus-digit hash dominated partitioning cost in >1M-event scale-out
/// runs); the rendezvous layer reuses the same key.
pub fn shard_key_of_user(user: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in (user as u64).to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Maps a numeric user id onto one of `shards` shards (static partition).
pub fn shard_of_user(user: usize, shards: usize) -> usize {
    (shard_key_of_user(user) % shards as u64) as usize
}

/// The user a pre-scheduled trace event belongs to. Only session/submit
/// events are partitioned (`ExecDone`/`ProgressTick` are scheduled inside
/// a shard's own loop and never cross shards).
pub(crate) fn owner_of(event: &ServeEv) -> usize {
    match event {
        ServeEv::SessionStart(user) | ServeEv::SessionEnd(user) => *user,
        ServeEv::Submit { user, .. } | ServeEv::ExecDone { user, .. } => *user,
        ServeEv::ProgressTick => 0,
    }
}

/// One shard's coordination footprint in a sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCoordination {
    /// Shard index.
    pub shard: usize,
    /// Users (sessions) partitioned onto this shard (static) or admitted
    /// plus stolen into it (balanced).
    pub sessions: usize,
    /// Wall time this shard spent blocked on the placement channel.
    pub placement_wait: Duration,
    /// Placement round trips awaited (launches + gauge queries).
    pub placement_calls: u64,
    /// Wall time of the shard thread, end to end.
    pub wall: Duration,
    /// High-water occupancy (live sessions + queued/in-flight cells).
    pub max_occupancy: u64,
    /// `(logical_secs, occupancy)` timeline sampled at gauge ticks.
    pub occupancy: Vec<(f64, u64)>,
    /// Steals this shard initiated that landed a session (balanced only).
    pub steals: u64,
    /// Sessions migrated into this shard by steals (balanced only).
    pub moved_in: u64,
    /// Sessions migrated out of this shard by steals (balanced only).
    pub moved_out: u64,
}

/// Where a sharded run's wall time went — the roofline-style
/// decomposition the scaling curve is read against: compute (per-shard
/// loops), coordination (placement channel + owner busy time), and the
/// sequential merge tail.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinationStats {
    /// Wall time of the parallel serving phase (spawn → last shard join).
    pub wall: Duration,
    /// Wall time of the sequential report merge.
    pub merge: Duration,
    /// Per-shard footprints, in shard order.
    pub shards: Vec<ShardCoordination>,
    /// The placement owner's side of the story.
    pub service: PlacementServiceStats,
}

impl CoordinationStats {
    /// Total wall time all shards spent blocked on the placement channel.
    pub fn placement_wait(&self) -> Duration {
        self.shards.iter().map(|s| s.placement_wait).sum()
    }

    /// Total placement round trips across shards.
    pub fn placement_calls(&self) -> u64 {
        self.shards.iter().map(|s| s.placement_calls).sum()
    }

    /// Total sessions landed by work stealing (zero on the static path).
    pub fn steals(&self) -> u64 {
        self.shards.iter().map(|s| s.steals).sum()
    }

    /// Total sessions migrated between shards (zero on the static path).
    pub fn sessions_moved(&self) -> u64 {
        self.shards.iter().map(|s| s.moved_in).sum()
    }

    /// The hottest shard's high-water occupancy — the skew metric the
    /// balanced mode exists to cut.
    pub fn max_shard_occupancy(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.max_occupancy)
            .max()
            .unwrap_or(0)
    }
}

/// A sharded run: the merged deterministic [`ServeReport`] plus the
/// per-shard reports and the coordination breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedServeReport {
    /// Gateway shards the run used.
    pub shards: usize,
    /// The merged report (counters summed, latency CDFs merged in shard
    /// order, percentiles recomputed over the union).
    pub report: ServeReport,
    /// Each shard's own report, in shard order.
    pub per_shard: Vec<ServeReport>,
    /// The wall-clock decomposition.
    pub coordination: CoordinationStats,
}

impl ShardedServeReport {
    /// Serializes the merged report plus the sharding decomposition.
    pub fn to_json(&self) -> Json {
        let per_shard: Vec<Json> = self
            .coordination
            .shards
            .iter()
            .map(|s| {
                let occupancy: Vec<Json> = s
                    .occupancy
                    .iter()
                    .map(|&(t, occ)| Json::object().with("t_s", t).with("occupancy", occ))
                    .collect();
                Json::object()
                    .with("shard", s.shard as u64)
                    .with("sessions", s.sessions as u64)
                    .with("placement_wait_s", s.placement_wait.as_secs_f64())
                    .with("placement_calls", s.placement_calls)
                    .with("wall_s", s.wall.as_secs_f64())
                    .with("max_occupancy", s.max_occupancy)
                    .with("steals", s.steals)
                    .with("moved_in", s.moved_in)
                    .with("moved_out", s.moved_out)
                    .with("occupancy", occupancy)
            })
            .collect();
        self.report
            .to_json()
            .with("shards", self.shards as u64)
            .with(
                "coordination",
                Json::object()
                    .with("wall_s", self.coordination.wall.as_secs_f64())
                    .with("merge_s", self.coordination.merge.as_secs_f64())
                    .with(
                        "placement_wait_s",
                        self.coordination.placement_wait().as_secs_f64(),
                    )
                    .with("placement_calls", self.coordination.placement_calls())
                    .with("steals", self.coordination.steals())
                    .with("sessions_moved", self.coordination.sessions_moved())
                    .with(
                        "max_shard_occupancy",
                        self.coordination.max_shard_occupancy(),
                    )
                    .with(
                        "service_busy_s",
                        self.coordination.service.busy.as_secs_f64(),
                    )
                    .with("service_launches", self.coordination.service.launches)
                    .with("service_wakeups", self.coordination.service.wakeups)
                    .with(
                        "service_mean_drained_per_wakeup",
                        self.coordination.service.mean_drained_per_wakeup(),
                    )
                    .with("service_drained_per_wakeup", {
                        let hist: Vec<Json> = self
                            .coordination
                            .service
                            .drained_per_wakeup
                            .iter()
                            .enumerate()
                            .map(|(i, &wakeups)| {
                                Json::object()
                                    .with("batch", drain_bucket_label(i))
                                    .with("wakeups", wakeups)
                            })
                            .collect();
                        hist
                    })
                    .with("per_shard", per_shard),
            )
    }
}

/// Runs the serving loop across `shards` gateway shards, one OS thread
/// each.
///
/// Sessions are partitioned by [`shard_of`] over their kernel id; each
/// shard owns its own scheduler (built by `make_sched`, called *on* the
/// shard thread so non-`Send` schedulers work), [`LiveGateway`], wire
/// endpoints, and latency accumulator — no locks on the per-execution
/// hot path. The one shared resource is placement: every shard's gateway
/// provisions through a [`PlacementClient`] into the single
/// [`PlacementService`] owner thread, keeping the capacity-bucketed host
/// index single-writer. Per-shard reports merge at shutdown in shard
/// order via [`Cdf::merge`].
///
/// Determinism contract: because viability is capacity-based (a fleet
/// that can place R replicas does so regardless of load order) and each
/// user's submit/queue/complete dynamics involve only their own session,
/// the merged report's [`ServeReport::shard_invariant_view`] is identical
/// for every shard count — and with one shard it equals [`run_serve`]'s
/// report exactly.
///
/// [`PlacementClient`]: notebookos_core::placement_service::PlacementClient
pub fn run_serve_sharded(
    opts: &ServeOpts,
    shards: usize,
    make_sched: &(dyn Fn(usize) -> Box<dyn Scheduler<ServeEv>> + Sync),
) -> ShardedServeReport {
    assert!(shards > 0, "at least one shard");
    let compressed = compressed_trace(opts);
    let mut shard_events: Vec<Vec<(SimTime, ServeEv)>> = vec![Vec::new(); shards];
    // Hash each numeric user id once and reuse the table per event —
    // formatting and hashing `"kernel-user-{user}"` per event dominated
    // partitioning cost in >1M-event scale-out runs.
    let user_shard: Vec<usize> = (0..opts.users)
        .map(|user| shard_of_user(user, shards))
        .collect();
    let mut shard_users = vec![0usize; shards];
    for &shard in &user_shard {
        shard_users[shard] += 1;
    }
    // Stable partition: within a shard, events keep global trace order,
    // so a one-shard run schedules exactly what `run_serve` schedules.
    for (deadline, event) in compressed.events {
        shard_events[user_shard[owner_of(&event)]].push((deadline, event));
    }

    let service = PlacementService::spawn(
        opts.hosts,
        notebookos_cluster::ResourceBundle::p3_16xlarge(),
        opts.replication_factor,
    );
    let specs = &compressed.specs;
    let start = Instant::now();
    let results: Vec<(ServeReport, ShardCoordination)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_events
            .into_iter()
            .enumerate()
            .map(|(shard, events)| {
                let backend = service.client();
                let sessions = shard_users[shard];
                scope.spawn(move || {
                    let shard_start = Instant::now();
                    let (mut gateway, mut wire) =
                        LiveGateway::with_backend(Box::new(backend), opts.replication_factor);
                    let mut sched = make_sched(shard);
                    let mut meter = OccupancyMeter::default();
                    let report = run_loop(
                        opts,
                        specs,
                        events,
                        sessions,
                        &mut gateway,
                        &mut wire,
                        sched.as_mut(),
                        &mut meter,
                    );
                    let (placement_wait, placement_calls) = gateway.coordination_wait();
                    (
                        report,
                        ShardCoordination {
                            shard,
                            sessions,
                            placement_wait,
                            placement_calls,
                            wall: shard_start.elapsed(),
                            max_occupancy: meter.max,
                            occupancy: meter.timeline,
                            steals: 0,
                            moved_in: 0,
                            moved_out: 0,
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard thread panicked"))
            .collect()
    });
    let wall = start.elapsed();
    // All clients dropped with their gateways; the owner loop has exited.
    let service_stats = service.join();

    let merge_start = Instant::now();
    let (per_shard, coord): (Vec<ServeReport>, Vec<ShardCoordination>) =
        results.into_iter().unzip();
    let report = merge_reports(&per_shard);
    let merge = merge_start.elapsed();

    ShardedServeReport {
        shards,
        report,
        per_shard,
        coordination: CoordinationStats {
            wall,
            merge,
            shards: coord,
            service: service_stats,
        },
    }
}

/// Merges per-shard reports into one deterministic report: counters sum,
/// `min_viable_hosts` takes the min, `logical_secs` the max (the global
/// last event), and the latency distributions merge in shard order with
/// percentiles recomputed over the union — so the merged report depends
/// only on the partition contents, not on thread interleaving.
pub(crate) fn merge_reports(parts: &[ServeReport]) -> ServeReport {
    let mut report = ServeReport {
        users: parts.iter().map(|p| p.users).sum(),
        sessions_started: parts.iter().map(|p| p.sessions_started).sum(),
        sessions_ended: parts.iter().map(|p| p.sessions_ended).sum(),
        peak_sessions: parts.iter().map(|p| p.peak_sessions).sum(),
        executions: parts.iter().map(|p| p.executions).sum(),
        execs_per_sec: 0.0,
        latency_p50_ms: 0.0,
        latency_p99_ms: 0.0,
        latency_mean_ms: 0.0,
        shortfalls: parts.iter().map(|p| p.shortfalls).sum(),
        dropped: parts.iter().map(|p| p.dropped).sum(),
        logical_secs: parts.iter().map(|p| p.logical_secs).fold(0.0, f64::max),
        gateway: GatewayStats {
            accepted: parts.iter().map(|p| p.gateway.accepted).sum(),
            rejected: parts.iter().map(|p| p.gateway.rejected).sum(),
            replies: parts.iter().map(|p| p.gateway.replies).sum(),
            fan_out_copies: parts.iter().map(|p| p.gateway.fan_out_copies).sum(),
        },
        client_sent: parts.iter().map(|p| p.client_sent).sum(),
        client_received: parts.iter().map(|p| p.client_received).sum(),
        min_viable_hosts: parts.iter().map(|p| p.min_viable_hosts).min().unwrap_or(0),
        gauge_samples: parts.iter().map(|p| p.gauge_samples).sum(),
        latency: Cdf::merged("request-latency-ms", parts.iter().map(|p| &p.latency)),
    };
    if !report.latency.is_empty() {
        report.latency_p50_ms = report.latency.percentile(50.0);
        report.latency_p99_ms = report.latency.percentile(99.0);
        report.latency_mean_ms = report.latency.mean();
    }
    if report.logical_secs > 0.0 {
        report.execs_per_sec = report.executions as f64 / report.logical_secs;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use notebookos_des::DesScheduler;

    #[test]
    fn smoke_run_completes_executions_under_virtual_time() {
        let opts = ServeOpts::smoke();
        let mut sched = DesScheduler::new();
        let report = run_serve(&opts, &mut sched);
        assert!(report.executions > 0, "smoke run must execute cells");
        assert_eq!(report.sessions_started, opts.users as u64);
        assert_eq!(report.shortfalls, 0);
        assert_eq!(
            report.gateway.replies, report.executions,
            "one merged reply per completed execution"
        );
        assert_eq!(
            report.gateway.fan_out_copies,
            report.gateway.accepted * u64::from(opts.replication_factor)
        );
        assert_eq!(sched.pending(), 0, "clean shutdown drains the queue");
        assert!(report.latency_p99_ms >= report.latency_p50_ms);
        assert!(report.min_viable_hosts > 0, "fleet never exhausted");
    }

    #[test]
    fn identical_inputs_give_identical_reports() {
        let opts = ServeOpts::smoke();
        let a = run_serve(&opts, &mut DesScheduler::new());
        let b = run_serve(&opts, &mut DesScheduler::new());
        assert_eq!(a, b, "serving loop is deterministic under DES");
    }

    #[test]
    fn busy_sessions_queue_rather_than_overlap() {
        // Compress hard enough that submissions outpace the cell cap:
        // the queue must absorb them and every accepted execution still
        // completes.
        let mut opts = ServeOpts::new(3, SimTime::from_millis(800));
        opts.hosts = 6;
        opts.max_cell = SimTime::from_millis(200);
        let report = run_serve(&opts, &mut DesScheduler::new());
        assert_eq!(report.gateway.replies, report.executions);
        assert_eq!(report.gateway.accepted, report.executions);
        assert!(report.latency_p99_ms >= report.latency_p50_ms);
    }

    #[test]
    fn shortfall_fleets_are_reported_not_fatal() {
        let mut opts = ServeOpts::smoke();
        opts.hosts = 2; // R = 3 cannot place
        let report = run_serve(&opts, &mut DesScheduler::new());
        assert_eq!(report.sessions_started, 0);
        assert_eq!(report.shortfalls, opts.users as u64);
        assert_eq!(report.executions, 0);
        assert!(report.dropped > 0, "their submissions drop");
    }

    #[test]
    fn one_shard_equals_the_unsharded_loop_exactly() {
        let opts = ServeOpts::smoke();
        let unsharded = run_serve(&opts, &mut DesScheduler::new());
        let sharded = run_serve_sharded(&opts, 1, &|_| Box::new(DesScheduler::new()));
        assert_eq!(sharded.per_shard.len(), 1);
        assert_eq!(
            sharded.report, unsharded,
            "every field, including the latency multiset, matches"
        );
    }

    #[test]
    fn merged_report_is_invariant_under_shard_count() {
        let mut opts = ServeOpts::smoke();
        opts.users = 8; // enough sessions to spread across shards
        let baseline = run_serve_sharded(&opts, 1, &|_| Box::new(DesScheduler::new()))
            .report
            .shard_invariant_view();
        assert!(baseline.executions > 0);
        for shards in [2usize, 3, 5] {
            let run = run_serve_sharded(&opts, shards, &|_| Box::new(DesScheduler::new()));
            assert_eq!(run.per_shard.len(), shards);
            assert_eq!(
                run.report.shard_invariant_view(),
                baseline,
                "{shards} shards must serve the same latencies as one"
            );
        }
    }

    #[test]
    fn coordination_stats_account_for_every_placement_round_trip() {
        let opts = ServeOpts::smoke();
        let run = run_serve_sharded(&opts, 2, &|_| Box::new(DesScheduler::new()));
        let coord = &run.coordination;
        assert_eq!(coord.shards.len(), 2);
        assert_eq!(
            coord.service.launches,
            run.report.sessions_started + run.report.shortfalls,
            "every session start hit the placement owner exactly once"
        );
        assert_eq!(
            coord.placement_calls(),
            coord.service.launches + coord.service.gauge_queries,
            "client round trips are launches plus gauge queries"
        );
        assert!(coord.placement_wait() > Duration::ZERO);
        assert_eq!(
            coord.shards.iter().map(|s| s.sessions).sum::<usize>(),
            opts.users,
            "the session partition is an exact cover"
        );
    }

    #[test]
    fn manual_clock_shards_match_des_with_zero_wall_sleeps() {
        use notebookos_des::{ManualClock, RealTimeScheduler};
        let opts = ServeOpts::smoke(); // 3 s serving window
        let started = Instant::now();
        let real_time = run_serve_sharded(&opts, 3, &|_| {
            Box::new(RealTimeScheduler::with_clock(Box::new(ManualClock::new())))
        });
        let wall = started.elapsed();
        let des = run_serve_sharded(&opts, 3, &|_| Box::new(DesScheduler::new()));
        assert_eq!(
            real_time.report.shard_invariant_view(),
            des.report.shard_invariant_view(),
            "real-time shards on a manual clock replay the DES run"
        );
        assert!(
            wall < Duration::from_secs(3),
            "a manual clock must not wall-sleep the 3 s serving window (took {wall:?})"
        );
    }

    #[test]
    fn shard_of_is_a_total_stable_partition() {
        for shards in 1..=8usize {
            for user in 0..64 {
                let id = format!("kernel-user-{user}");
                let a = shard_of(&id, shards);
                assert!(a < shards);
                assert_eq!(a, shard_of(&id, shards), "stable");
            }
        }
        // The hash actually spreads: 64 users over 4 shards leave none empty.
        let mut counts = [0usize; 4];
        for user in 0..64 {
            counts[shard_of(&format!("kernel-user-{user}"), 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }
}
