//! Shared command-line plumbing for the sweep-driven bench binaries.
//!
//! Every binary that executes a [`SweepSpec`] (`sweep_shard`,
//! `elasticity_sweep`) speaks the same four sharding/persistence flags:
//!
//! * `--shard I/M` — run only shard `I` of `M` ([`SweepSpec::shard`])
//! * `--shard-by job|block` — partition single jobs round-robin (the
//!   default) or whole `(scenario, seed)` trace blocks
//!   ([`SweepSpec::shard_by`], so a shard only generates its own traces)
//! * `--out FILE` — persist the report as JSON ([`SweepReport::write_json`])
//! * `--resume FILE` — skip cells already persisted in `FILE` and append
//!   the missing ones ([`SweepSpec::run_resuming`])
//! * `--fsync` — with `--resume`, fsync the checkpoint journal after
//!   every record ([`SweepSpec::journal_fsync`]); the measured per-record
//!   throughput cost is printed before the sweep starts
//! * `--merge FILES...` — run nothing; merge previously persisted shard
//!   reports ([`SweepReport::merge`])
//!
//! [`SweepCli::parse`] recognizes them (plus `--smoke` and `--workers N`)
//! and [`SweepCli::execute`] drives the corresponding engine entry point,
//! so the binaries only build their spec and render their tables.

use std::path::{Path, PathBuf};

use notebookos_core::sweep::{
    measure_journal_fsync_cost, ShardStrategy, SweepError, SweepReport, SweepSpec,
};

/// Parsed sharding/persistence flags shared by the sweep binaries.
#[derive(Debug, Clone, Default)]
pub struct SweepCli {
    /// `--smoke`: CI-scale workloads.
    pub smoke: bool,
    /// `--workers N` (0 = automatic).
    pub workers: usize,
    /// `--shard I/M`.
    pub shard: Option<(usize, usize)>,
    /// `--shard-by job|block` (default `job`): whether shards partition
    /// single jobs round-robin or whole `(scenario, seed)` trace blocks
    /// (so a shard only generates the traces it runs).
    pub shard_by: ShardStrategy,
    /// `--out FILE`.
    pub out: Option<PathBuf>,
    /// `--resume FILE`.
    pub resume: Option<PathBuf>,
    /// `--fsync`: per-record journal durability for resumable runs.
    pub fsync: bool,
    /// `--merge FILES...` (every following argument up to the next
    /// `--flag`).
    pub merge: Vec<PathBuf>,
}

/// Parses `"I/M"` into a `(index, total)` shard restriction.
///
/// # Errors
///
/// Rejects malformed fractions, `M == 0`, and `I >= M`.
pub fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let bad = || format!("--shard takes I/M with I < M, got `{s}`");
    let (index, total) = s.split_once('/').ok_or_else(bad)?;
    let index: usize = index.parse().map_err(|_| bad())?;
    let total: usize = total.parse().map_err(|_| bad())?;
    if total == 0 || index >= total {
        return Err(bad());
    }
    Ok((index, total))
}

impl SweepCli {
    /// Parses the shared flag set from `args` (program name already
    /// skipped). Unknown arguments are rejected with a message that
    /// embeds `usage`.
    ///
    /// # Errors
    ///
    /// Returns the message to print to stderr before exiting with
    /// status 2.
    pub fn parse(args: impl IntoIterator<Item = String>, usage: &str) -> Result<SweepCli, String> {
        let mut cli = SweepCli::default();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} takes a value; usage: {usage}"))
            };
            match arg.as_str() {
                "--smoke" => cli.smoke = true,
                "--workers" => {
                    cli.workers = value("--workers")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("--workers takes a positive integer; usage: {usage}")
                        })?;
                }
                "--shard" => cli.shard = Some(parse_shard(&value("--shard")?)?),
                "--shard-by" => {
                    cli.shard_by = match value("--shard-by")?.as_str() {
                        "job" => ShardStrategy::JobRoundRobin,
                        "block" => ShardStrategy::TraceBlock,
                        other => {
                            return Err(format!(
                                "--shard-by takes `job` or `block`, got `{other}`; usage: {usage}"
                            ))
                        }
                    };
                }
                "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
                "--resume" => cli.resume = Some(PathBuf::from(value("--resume")?)),
                "--fsync" => cli.fsync = true,
                "--merge" => {
                    // Shard report paths run up to the next `--flag`.
                    while args.peek().is_some_and(|a| !a.starts_with("--")) {
                        cli.merge.push(PathBuf::from(args.next().expect("peeked")));
                    }
                    if cli.merge.is_empty() {
                        return Err(format!("--merge takes at least one file; usage: {usage}"));
                    }
                }
                other => return Err(format!("unknown argument {other:?}; usage: {usage}")),
            }
        }
        // Merge mode runs nothing, so a shard restriction or resume file
        // alongside it would be silently ignored — reject the
        // combination instead of letting the user believe it happened.
        if !cli.merge.is_empty() && (cli.shard.is_some() || cli.resume.is_some()) {
            return Err(format!(
                "--merge cannot be combined with --shard or --resume; usage: {usage}"
            ));
        }
        // A sharded run must name a persistence target: partial results
        // exist only to be merged or resumed, so running a shard and
        // discarding its report would waste every cell it computed.
        if cli.shard.is_some() && cli.out.is_none() && cli.resume.is_none() {
            return Err(format!(
                "--shard produces partial results; give it --out FILE or --resume FILE \
                 so the other shards can be merged in; usage: {usage}"
            ));
        }
        // The checkpoint journal only exists on resumable runs, so
        // `--fsync` without `--resume` would silently do nothing.
        if cli.fsync && cli.resume.is_none() {
            return Err(format!(
                "--fsync hardens the --resume checkpoint journal; give it --resume FILE; \
                 usage: {usage}"
            ));
        }
        Ok(cli)
    }

    /// Executes the flags against `spec`:
    ///
    /// * merge mode reads and merges the shard reports (running nothing);
    /// * resume mode shards the spec if asked, then resumes from the
    ///   `--resume` file;
    /// * otherwise the (possibly sharded) spec runs from scratch.
    ///
    /// In every mode the resulting report is persisted to `--out` when
    /// given, and per-run progress goes to stderr under `label`.
    ///
    /// # Errors
    ///
    /// Propagates report I/O, corruption, fingerprint, and overlap
    /// errors — the binaries print the error and exit non-zero.
    pub fn execute(&self, spec: &SweepSpec, label: &str) -> Result<SweepReport, SweepError> {
        let report = if !self.merge.is_empty() {
            let mut reports = Vec::with_capacity(self.merge.len());
            for path in &self.merge {
                // Journal-aware: a shard killed before its final
                // compaction still contributes every completed cell.
                reports.push(SweepReport::read_json_with_journal(path)?);
            }
            let merged = SweepReport::merge(reports)?;
            // The shard files must agree with each other *and* with the
            // spec this binary would run — stale artifacts from an older
            // revision of the study must not render as current results.
            if merged.fingerprint != spec.fingerprint() {
                return Err(SweepError::FingerprintMismatch {
                    expected: spec.fingerprint(),
                    found: merged.fingerprint,
                });
            }
            eprintln!(
                "{label}: merged {} shard file(s) into {} runs",
                self.merge.len(),
                merged.len()
            );
            merged
        } else {
            let spec = match self.shard {
                Some((index, total)) => {
                    let sharded = spec.clone().shard(index, total).shard_by(self.shard_by);
                    eprintln!(
                        "{label}: shard {index}/{total} (by {}) — {} of {} jobs",
                        self.shard_by,
                        sharded.job_indices().len(),
                        spec.total_jobs()
                    );
                    sharded
                }
                None => spec.clone(),
            };
            let spec = spec.workers(self.workers).journal_fsync(self.fsync);
            if self.fsync {
                // Price the durability upgrade on the disk the journal
                // will actually live on, and say so up front.
                if let Some(path) = &self.resume {
                    let dir = path
                        .parent()
                        .filter(|p| !p.as_os_str().is_empty())
                        .unwrap_or(Path::new("."));
                    match measure_journal_fsync_cost(dir, 64) {
                        Ok(cost) => eprintln!("{label}: {}", cost.render()),
                        Err(error) => eprintln!("{label}: fsync cost probe failed: {error}"),
                    }
                }
            }
            let progress =
                |done: usize, total: usize| eprintln!("  [{done}/{total}] runs complete");
            match &self.resume {
                Some(path) => spec.run_resuming_with_progress(path, progress)?,
                None => spec.run_with_progress(progress),
            }
        };
        if let Some(out) = &self.out {
            report.write_json(out).map_err(|source| SweepError::Io {
                path: out.clone(),
                source,
            })?;
            eprintln!("{label}: report written to {}", out.display());
        }
        Ok(report)
    }

    /// Whether `report` covers the full (unsharded) matrix of `spec` —
    /// completeness-gated summary tables and assertions key off this.
    pub fn is_complete(spec: &SweepSpec, report: &SweepReport) -> bool {
        report.len() == spec.total_jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepCli, String> {
        SweepCli::parse(args.iter().map(|s| s.to_string()), "test-usage")
    }

    #[test]
    fn parses_the_shared_flag_set() {
        let cli = parse(&[
            "--smoke",
            "--workers",
            "4",
            "--shard",
            "1/3",
            "--out",
            "r.json",
        ])
        .expect("valid flags");
        assert!(cli.smoke);
        assert_eq!(cli.workers, 4);
        assert_eq!(cli.shard, Some((1, 3)));
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("r.json")));
        assert!(cli.resume.is_none());
        assert!(cli.merge.is_empty());
    }

    #[test]
    fn merge_stops_at_the_next_flag() {
        let cli = parse(&["--merge", "a.json", "b.json"]).expect("valid");
        assert_eq!(cli.merge.len(), 2);
        assert!(parse(&["--merge"]).is_err());
        let cli = parse(&["--merge", "a.json", "b.json", "--out", "m.json"]).expect("valid");
        assert_eq!(cli.merge.len(), 2);
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("m.json")));
    }

    #[test]
    fn rejects_bad_shards_and_unknown_flags() {
        assert!(parse(&["--shard", "3/3"]).is_err());
        assert!(parse(&["--shard", "0/0"]).is_err());
        assert!(parse(&["--shard", "nope"]).is_err());
        let err = parse(&["--frob"]).unwrap_err();
        assert!(err.contains("test-usage"));
        assert!(parse(&["--workers", "0"]).is_err());
    }

    #[test]
    fn parses_shard_strategy() {
        assert_eq!(parse(&[]).unwrap().shard_by, ShardStrategy::JobRoundRobin);
        assert_eq!(
            parse(&["--shard", "0/2", "--shard-by", "block", "--out", "s.json"])
                .unwrap()
                .shard_by,
            ShardStrategy::TraceBlock
        );
        assert_eq!(
            parse(&["--shard-by", "job"]).unwrap().shard_by,
            ShardStrategy::JobRoundRobin
        );
        assert!(parse(&["--shard-by", "frob"]).is_err());
        assert!(parse(&["--shard-by"]).is_err());
    }

    #[test]
    fn rejects_merge_combined_with_run_flags() {
        assert!(parse(&["--merge", "a.json", "--shard", "0/2", "--out", "s.json"]).is_err());
        assert!(parse(&["--resume", "r.json", "--merge", "a.json"]).is_err());
        // --out with --merge is meaningful (persist the merged report).
        assert!(parse(&["--merge", "a.json", "--out", "m.json"]).is_ok());
    }

    #[test]
    fn shard_requires_a_persistence_target() {
        let err = parse(&["--shard", "0/2"]).unwrap_err();
        assert!(err.contains("--out"), "{err}");
        assert!(parse(&["--shard", "0/2", "--out", "s.json"]).is_ok());
        assert!(parse(&["--shard", "0/2", "--resume", "r.json"]).is_ok());
    }

    #[test]
    fn fsync_requires_a_resume_journal() {
        let err = parse(&["--fsync"]).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        assert!(parse(&["--fsync", "--out", "r.json"]).is_err());
        let cli = parse(&["--fsync", "--resume", "r.json"]).expect("valid");
        assert!(cli.fsync);
        assert!(!parse(&["--resume", "r.json"]).unwrap().fsync);
    }

    #[test]
    fn shard_fraction_accepts_full_range() {
        assert_eq!(parse_shard("0/1").unwrap(), (0, 1));
        assert_eq!(parse_shard("5/6").unwrap(), (5, 6));
    }
}
