//! Kill-anywhere chaos drills over the WAL-backed live Raft cluster.
//!
//! The drill runs two clusters over the same command stream:
//!
//! 1. a **golden** run — in-memory storage, never interrupted — whose
//!    committed command sequence is the reference state, and
//! 2. the **chaos** run — WAL-backed replicas, each fail-stopped at a
//!    pseudo-random point mid-stream at least once, detected by the
//!    §3.2.5 heartbeat [`FailureDetector`], recovered per
//!    [`recovery_action`], and restarted over its own WAL.
//!
//! After the last cycle the drill quiesces and asserts the recovered
//! committed state **byte-for-byte**: every replica's applied sequence is
//! encoded with the same canonical codec the WAL uses
//! ([`encode_commands`]) and compared against the golden bytes. Client
//! retries across a dying leader give at-least-once delivery, so the
//! comparison is over each replica's first-application order with
//! duplicate re-proposals collapsed — replicas must *also* agree with
//! each other on the raw sequence, which catches divergence that
//! deduplication could mask.
//!
//! Every kill→recover cycle is decomposed into the [`RecoveryBreakdown`]
//! phases (detect / failover / WAL replay / catch-up), and the report
//! carries the measured [`WalFsyncCost`] so the durability tax shows up
//! next to the availability numbers.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use notebookos_core::{recovery_action, FailureDetector, RecoveryAction, RecoveryBreakdown};
use notebookos_core::{RecoveryPhase, ReplicaId};
use notebookos_jupyter::Json;
use notebookos_raft::live::{LiveCluster, NodeSnapshot};
use notebookos_raft::{encode_commands, measure_wal_fsync_cost, NodeId, WalFsyncCost, WalOptions};

/// Chaos-drill parameters.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Replicas per kernel (the paper's replication factor, 3).
    pub replicas: usize,
    /// Commands proposed across the whole drill.
    pub commands: usize,
    /// Kill/restart cycles; every replica is killed at least once as long
    /// as `cycles >= replicas`.
    pub cycles: usize,
    /// Seed for the kill-point jitter.
    pub seed: u64,
    /// WAL fsync batching (1 = fsync per input, full durability).
    pub fsync_batch: usize,
    /// Heartbeat-timeout window of the failure detector.
    pub detect_timeout: Duration,
    /// Where node WALs live; `None` uses a per-run temp directory.
    pub dir: Option<PathBuf>,
}

impl ChaosOpts {
    /// Full drill: 3 replicas, 48 commands, 6 cycles.
    pub fn new(seed: u64) -> Self {
        ChaosOpts {
            replicas: 3,
            commands: 48,
            cycles: 6,
            seed,
            fsync_batch: 1,
            detect_timeout: Duration::from_millis(150),
            dir: None,
        }
    }

    /// CI smoke drill: every replica still dies once, smallest stream
    /// that exercises failover during the outage.
    pub fn smoke(seed: u64) -> Self {
        ChaosOpts {
            commands: 18,
            cycles: 3,
            ..ChaosOpts::new(seed)
        }
    }
}

/// One kill→recover cycle's measured phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleLatency {
    /// The replica that was killed.
    pub victim: NodeId,
    /// Kill → failure detector declares the replica failed.
    pub detect_ms: f64,
    /// Detection → surviving quorum accepted the next proposal.
    pub failover_ms: f64,
    /// WAL open + replay on restart.
    pub replay_ms: f64,
    /// Restart → replica re-applied every command committed so far.
    pub catch_up_ms: f64,
    /// Kill → fully caught up.
    pub total_ms: f64,
}

/// What the drill did and whether the recovered state matched.
#[derive(Debug)]
pub struct ChaosReport {
    /// Parameters the drill ran with.
    pub opts: ChaosOpts,
    /// Per-cycle recovery latencies, in cycle order.
    pub cycle_latencies: Vec<CycleLatency>,
    /// Phase CDFs across cycles.
    pub recovery: RecoveryBreakdown,
    /// Distinct replicas killed at least once.
    pub replicas_killed: usize,
    /// Commands in the golden committed sequence.
    pub golden_commands: usize,
    /// Duplicate applications observed (client retries across a dying
    /// leader; at-least-once, collapsed before the byte comparison).
    pub duplicates: u64,
    /// Whether every replica's recovered committed state byte-matched the
    /// golden run.
    pub state_match: bool,
    /// Human-readable mismatch description when `state_match` is false.
    pub mismatch: Option<String>,
    /// Measured WAL append cost, batched vs fsync-per-append.
    pub fsync_cost: WalFsyncCost,
}

impl ChaosReport {
    /// JSON artifact for `--out` (consumed by CI upload).
    pub fn to_json(&self) -> Json {
        let cycles: Vec<Json> = self
            .cycle_latencies
            .iter()
            .map(|c| {
                Json::object()
                    .with("victim", c.victim)
                    .with("detect_ms", c.detect_ms)
                    .with("failover_ms", c.failover_ms)
                    .with("replay_ms", c.replay_ms)
                    .with("catch_up_ms", c.catch_up_ms)
                    .with("total_ms", c.total_ms)
            })
            .collect();
        Json::object()
            .with("bench", "chaos-drill")
            .with("replicas", self.opts.replicas as u64)
            .with("commands", self.opts.commands as u64)
            .with("cycles", self.opts.cycles as u64)
            .with("seed", self.opts.seed)
            .with("fsync_batch", self.opts.fsync_batch as u64)
            .with("replicas_killed", self.replicas_killed as u64)
            .with("golden_commands", self.golden_commands as u64)
            .with("duplicates", self.duplicates)
            .with("state_match", self.state_match)
            .with("mismatch", self.mismatch.clone().unwrap_or_default())
            .with("cycle_latencies", cycles)
            .with(
                "wal_fsync_cost",
                Json::object()
                    .with(
                        "buffered_us_per_append",
                        self.fsync_cost.buffered_us_per_append,
                    )
                    .with("fsync_us_per_append", self.fsync_cost.fsync_us_per_append)
                    .with("slowdown", self.fsync_cost.slowdown())
                    .with("appends", self.fsync_cost.appends as u64),
            )
    }

    /// Human rendering: the recovery table plus the fsync cost line.
    pub fn render(&self) -> String {
        let verdict = if self.state_match {
            "STATE MATCH — every replica recovered the golden committed bytes".to_string()
        } else {
            format!(
                "STATE MISMATCH — {}",
                self.mismatch.as_deref().unwrap_or("unknown divergence")
            )
        };
        format!(
            "{}\n{} replicas killed across {} cycles, {} duplicate re-proposals collapsed\n{}\n{}",
            self.recovery.to_table(),
            self.replicas_killed,
            self.cycle_latencies.len(),
            self.duplicates,
            self.fsync_cost.render(),
            verdict,
        )
    }
}

/// Deterministic xorshift64* stream for kill-point jitter.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// First-application order with duplicate re-proposals collapsed.
fn dedup_applied(applied: &[String]) -> Vec<String> {
    let mut seen = HashSet::new();
    applied
        .iter()
        .filter(|c| seen.insert((*c).clone()))
        .cloned()
        .collect()
}

fn poll<T>(
    deadline: Instant,
    interval: Duration,
    mut probe: impl FnMut() -> Option<T>,
) -> Option<T> {
    loop {
        if let Some(v) = probe() {
            return Some(v);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(interval);
    }
}

const PROPOSE_TIMEOUT: Duration = Duration::from_secs(20);
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);
const POLL: Duration = Duration::from_millis(5);

/// The command stream; unique payloads so first-application order is
/// recoverable under at-least-once client retries.
fn command(i: usize) -> String {
    format!("cell-{i}: acc += grad[{i}]")
}

/// Runs the uninterrupted golden cluster over the same command stream and
/// returns its canonical committed bytes.
fn golden_run(opts: &ChaosOpts) -> (Vec<String>, Vec<u8>) {
    let cluster = LiveCluster::<String>::start(opts.replicas);
    for i in 0..opts.commands {
        cluster
            .propose_blocking(command(i), PROPOSE_TIMEOUT)
            .expect("golden run proposal accepted");
    }
    let deadline = Instant::now() + QUIESCE_TIMEOUT;
    let snap = poll(deadline, POLL, || {
        let snap = cluster.inspect(1, Duration::from_secs(1))?;
        (dedup_applied(&snap.applied).len() == opts.commands).then_some(snap)
    })
    .expect("golden run quiesced");
    cluster.shutdown();
    let golden = dedup_applied(&snap.applied);
    let bytes = encode_commands(&golden);
    (golden, bytes)
}

/// Runs the full drill; see the module docs for the shape.
///
/// # Panics
///
/// Panics if the drill infrastructure itself fails (cluster threads dying,
/// timeouts): those are harness bugs, not state divergence — divergence is
/// reported via [`ChaosReport::state_match`].
pub fn run_chaos_drill(opts: &ChaosOpts) -> ChaosReport {
    assert!(opts.replicas >= 3, "need a quorum-capable cluster");
    assert!(opts.cycles >= 1 && opts.commands >= opts.cycles);

    let (golden, golden_bytes) = golden_run(opts);

    let dir = opts.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "notebookos-chaos-{}-{}",
            std::process::id(),
            opts.seed
        ))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let wal_options = WalOptions {
        fsync_batch: opts.fsync_batch,
    };
    let mut cluster = LiveCluster::<String>::start_durable(opts.replicas, &dir, wal_options);
    let ids = cluster.node_ids();

    // §3.2.5 wiring: one kernel, R replicas, heartbeat detector.
    let kernel = 1u64;
    let replica_of = |id: NodeId| ReplicaId::new(kernel, id as u32);
    let epoch = Instant::now();
    let now_us = || epoch.elapsed().as_micros() as u64;
    let mut detector = FailureDetector::new(opts.detect_timeout.as_micros() as u64);
    for &id in &ids {
        detector.register(replica_of(id), now_us());
    }

    let mut jitter = Jitter(opts.seed | 1);
    let mut recovery = RecoveryBreakdown::new(format!(
        "chaos seed={} fsync_batch={}",
        opts.seed, opts.fsync_batch
    ));
    let mut cycle_latencies = Vec::new();
    let mut killed: HashSet<NodeId> = HashSet::new();
    let mut next_cmd = 0usize;
    let per_cycle = opts.commands / opts.cycles;

    let propose_n = |cluster: &LiveCluster<String>, next_cmd: &mut usize, n: usize| {
        for _ in 0..n {
            if *next_cmd >= opts.commands {
                return;
            }
            cluster
                .propose_blocking(command(*next_cmd), PROPOSE_TIMEOUT)
                .expect("chaos run proposal accepted");
            *next_cmd += 1;
        }
    };

    for cycle in 0..opts.cycles {
        // Round-robin victims guarantee everyone dies at least once; the
        // kill lands at a jittered point inside the cycle's stream.
        let victim = ids[cycle % ids.len()];
        let before_kill = (jitter.next() as usize) % per_cycle.max(1);
        propose_n(&cluster, &mut next_cmd, before_kill);
        std::thread::sleep(Duration::from_micros(jitter.next() % 3_000));

        let t_kill = Instant::now();
        assert!(cluster.kill(victim), "victim {victim} was running");

        // Detection: live replicas keep heartbeating (inspect responses
        // stand in for the schedulers' liveness traffic); the victim goes
        // silent and trips the timeout window.
        let t_detected = poll(t_kill + QUIESCE_TIMEOUT, POLL, || {
            for &id in &ids {
                if cluster.is_running(id)
                    && cluster.inspect(id, Duration::from_millis(100)).is_some()
                {
                    detector.heartbeat(replica_of(id), now_us());
                }
            }
            let failed = detector.tick(now_us());
            failed.contains(&replica_of(victim)).then(Instant::now)
        })
        .expect("detector declared the victim failed");
        let detect_ms = (t_detected - t_kill).as_secs_f64() * 1e3;

        let failed = detector.failed_replicas_of(kernel);
        assert_eq!(
            recovery_action(&failed, opts.replicas as u32),
            RecoveryAction::RecreateReplica(replica_of(victim)),
            "single failure with quorum intact recreates the replica"
        );

        // Failover: the surviving quorum must accept the next command.
        propose_n(&cluster, &mut next_cmd, 1);
        let failover_ms = t_detected.elapsed().as_secs_f64() * 1e3;

        // The rest of the cycle's stream runs against the degraded
        // cluster before the replica comes back.
        propose_n(
            &cluster,
            &mut next_cmd,
            per_cycle.saturating_sub(before_kill + 1),
        );

        // Recreate: restart() re-invokes the WAL factory, so open+replay
        // cost is exactly the restart call.
        let t_restart = Instant::now();
        assert!(cluster.restart(victim), "victim restarts");
        let replay_ms = t_restart.elapsed().as_secs_f64() * 1e3;
        detector.register(replica_of(victim), now_us());

        // Catch-up: the replica re-applies everything committed so far.
        let target = next_cmd;
        poll(t_restart + QUIESCE_TIMEOUT, POLL, || {
            let snap = cluster.inspect(victim, Duration::from_secs(1))?;
            (dedup_applied(&snap.applied).len() >= target).then_some(())
        })
        .expect("restarted replica caught up");
        let catch_up_ms = t_restart.elapsed().as_secs_f64() * 1e3 - replay_ms;
        let total_ms = t_kill.elapsed().as_secs_f64() * 1e3;

        killed.insert(victim);
        recovery.record_phase(RecoveryPhase::Detect, detect_ms);
        recovery.record_phase(RecoveryPhase::Failover, failover_ms);
        recovery.record_phase(RecoveryPhase::Replay, replay_ms);
        recovery.record_phase(RecoveryPhase::CatchUp, catch_up_ms);
        recovery.record_total(total_ms);
        cycle_latencies.push(CycleLatency {
            victim,
            detect_ms,
            failover_ms,
            replay_ms,
            catch_up_ms,
            total_ms,
        });
    }

    // Drain any remaining stream and quiesce every replica on the full
    // golden prefix.
    propose_n(&cluster, &mut next_cmd, opts.commands);
    let deadline = Instant::now() + QUIESCE_TIMEOUT;
    let mut snapshots: Vec<NodeSnapshot<String>> = Vec::new();
    for &id in &ids {
        let snap = poll(deadline, POLL, || {
            let snap = cluster.inspect(id, Duration::from_secs(1))?;
            (dedup_applied(&snap.applied).len() >= golden.len()).then_some(snap)
        })
        .unwrap_or_else(|| panic!("replica {id} never converged"));
        snapshots.push(snap);
    }
    cluster.shutdown();

    // Byte-for-byte verdict.
    let mut duplicates = 0u64;
    let mut state_match = true;
    let mut mismatch = None;
    let raw_reference = &snapshots[0].applied;
    for snap in &snapshots {
        let deduped = dedup_applied(&snap.applied);
        duplicates += (snap.applied.len() - deduped.len()) as u64;
        let bytes = encode_commands(&deduped);
        if bytes != golden_bytes {
            state_match = false;
            let diverged = deduped
                .iter()
                .zip(&golden)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| deduped.len().min(golden.len()));
            mismatch.get_or_insert(format!(
                "replica {} recovered {} commands vs golden {} (first divergence at #{diverged})",
                snap.id,
                deduped.len(),
                golden.len(),
            ));
        }
        // Replicas must agree on the raw sequence too: a replica that
        // "recovers" by inventing or reordering duplicates is divergent
        // even if deduplication hides it.
        if &snap.applied != raw_reference && state_match {
            state_match = false;
            mismatch.get_or_insert(format!(
                "replica {} raw applied sequence disagrees with replica {}",
                snap.id, snapshots[0].id,
            ));
        }
    }

    let fsync_cost =
        measure_wal_fsync_cost(&dir, 256).expect("fsync cost probe on the WAL directory");
    let _ = std::fs::remove_dir_all(&dir);

    ChaosReport {
        opts: opts.clone(),
        cycle_latencies,
        recovery,
        replicas_killed: killed.len(),
        golden_commands: golden.len(),
        duplicates,
        state_match,
        mismatch,
        fsync_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_first_application_order() {
        let applied = ["a", "b", "a", "c", "b"].map(String::from);
        assert_eq!(dedup_applied(&applied), ["a", "b", "c"].map(String::from));
    }

    #[test]
    fn smoke_drill_kills_every_replica_and_recovers_golden_state() {
        let opts = ChaosOpts::smoke(2026);
        let report = run_chaos_drill(&opts);
        assert_eq!(report.replicas_killed, opts.replicas, "everyone died once");
        assert_eq!(report.golden_commands, opts.commands);
        assert!(
            report.state_match,
            "recovered state diverged: {:?}",
            report.mismatch
        );
        assert_eq!(report.recovery.cycles(), opts.cycles);
        assert!(report.fsync_cost.fsync_us_per_append > 0.0);
        let json = report.to_json();
        assert_eq!(json.get("state_match").and_then(Json::as_bool), Some(true));
        assert!(report.render().contains("STATE MATCH"));
    }
}
