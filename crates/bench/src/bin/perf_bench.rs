//! End-to-end performance measurement for the simulator hot path.
//!
//! Prints a JSON object with two families of numbers:
//!
//! * `placement_ns_per_op` — nanoseconds per placement ranking (the
//!   Global Scheduler's per-kernel decision) at several fleet sizes, for
//!   the least-loaded policy plus the raw viability screen.
//! * `end_to_end` — wall-clock seconds per full platform run and the
//!   derived events/sec (simulation events dispatched per wall second).
//!
//! The committed `BENCH_pr5.json` pairs one pre-optimization and one
//! post-optimization invocation of this binary; CI runs `--smoke` on
//! every push (non-gating) so the numbers stay visible in job logs.
//!
//! Usage: `perf_bench [--smoke] [--iters N] [--out FILE]`

use std::time::Instant;

use notebookos_bench::loaded_cluster;
use notebookos_cluster::ResourceRequest;
use notebookos_core::policy::{LeastLoaded, PlacementContext, PlacementPolicy};
use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_trace::{generate, SyntheticConfig};

/// ns/op of the least-loaded placement ranking at `hosts` fleet size.
fn bench_rank(hosts: usize, iters: u32) -> f64 {
    let cluster = loaded_cluster(hosts);
    let req = ResourceRequest::one_gpu();
    let ctx = PlacementContext {
        cluster: &cluster,
        request: &req,
        replication_factor: 3,
    };
    let mut policy = LeastLoaded::default();
    let mut out = Vec::new();
    // Warm up (and fault in the scratch buffers on the optimized path).
    for _ in 0..iters / 10 + 1 {
        policy.rank_into(&ctx, &mut out);
    }
    let start = Instant::now();
    for _ in 0..iters {
        policy.rank_into(&ctx, &mut out);
        assert_eq!(out.len(), hosts, "every host stays viable");
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// ns/op of the shared viability screen at `hosts` fleet size.
fn bench_viable(hosts: usize, iters: u32) -> f64 {
    let cluster = loaded_cluster(hosts);
    let req = ResourceRequest::one_gpu();
    let mut viable = notebookos_cluster::Viability::default();
    for _ in 0..iters / 10 + 1 {
        cluster.viable_hosts_into(&req, 3, 1.0, &mut viable);
    }
    let start = Instant::now();
    for _ in 0..iters {
        cluster.viable_hosts_into(&req, 3, 1.0, &mut viable);
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct EndToEnd {
    scenario: &'static str,
    runs: u32,
    wall_s_per_run: f64,
    events_per_run: u64,
    events_per_sec: f64,
    executions_per_sec: f64,
}

impl EndToEnd {
    fn to_json(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"runs\": {}, \"wall_s_per_run\": {:.4}, \
             \"events_per_run\": {}, \"events_per_sec\": {:.1}, \"executions_per_sec\": {:.1}}}",
            self.scenario,
            self.runs,
            self.wall_s_per_run,
            self.events_per_run,
            self.events_per_sec,
            self.executions_per_sec,
        )
    }
}

/// Full NotebookOS platform runs over `workload`; events/sec is the
/// number of simulation events dispatched divided by wall time. A
/// non-zero `initial_hosts` pins the fleet floor there, so placement and
/// commit/release run against a large cluster every event.
fn bench_end_to_end(
    scenario: &'static str,
    workload: &SyntheticConfig,
    runs: u32,
    initial_hosts: u32,
) -> EndToEnd {
    let trace = generate(workload, 99);
    let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
    if initial_hosts > 0 {
        config.initial_hosts = initial_hosts;
        config.autoscale.min_hosts = initial_hosts;
    }
    // Warm-up run (page in the trace, allocator, branch predictors).
    let _ = Platform::run(config.clone(), trace.clone());
    let mut events = 0u64;
    let mut executions = 0u64;
    let start = Instant::now();
    for _ in 0..runs {
        let world = Platform::run_for_inspection(config.clone(), trace.clone());
        events += world.events_processed();
        executions += world.metrics().counters.executions;
    }
    let wall = start.elapsed().as_secs_f64();
    EndToEnd {
        scenario,
        runs,
        wall_s_per_run: wall / f64::from(runs),
        events_per_run: events / u64::from(runs),
        events_per_sec: events as f64 / wall,
        executions_per_sec: executions as f64 / wall,
    }
}

fn json_map(pairs: &[(usize, f64)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(hosts, ns)| format!("\"{hosts}\": {ns:.1}"))
        .collect();
    format!("{{{}}}", items.join(", "))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut iters: u32 = 2_000;
    let mut out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters takes a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--out takes a file path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: perf_bench [--smoke] [--iters N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let fleets: &[usize] = if smoke {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let rank: Vec<(usize, f64)> = fleets.iter().map(|&h| (h, bench_rank(h, iters))).collect();
    let viable: Vec<(usize, f64)> = fleets
        .iter()
        .map(|&h| (h, bench_viable(h, iters)))
        .collect();

    // The fleet-scale scenario keeps 256 hosts alive for the whole run,
    // so per-event cluster work dominates the wall time — the number the
    // hot-path optimization moves most.
    let fleet_workload = SyntheticConfig {
        sessions: 400,
        span_s: 4.0 * 3600.0,
        ..SyntheticConfig::excerpt_17_5h()
    };
    let cases: Vec<EndToEnd> = if smoke {
        vec![bench_end_to_end("smoke", &SyntheticConfig::smoke(), 10, 0)]
    } else {
        vec![
            bench_end_to_end("excerpt-17.5h", &SyntheticConfig::excerpt_17_5h(), 30, 0),
            bench_end_to_end("fleet-256", &fleet_workload, 20, 256),
        ]
    };
    let e2e_json: Vec<String> = cases.iter().map(EndToEnd::to_json).collect();

    let json = format!(
        "{{\n  \"placement_rank_ns_per_op\": {},\n  \"viable_hosts_ns_per_op\": {},\n  \
         \"end_to_end\": [{}]\n}}",
        json_map(&rank),
        json_map(&viable),
        e2e_json.join(", "),
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("perf_bench: wrote {path}");
    }
}
