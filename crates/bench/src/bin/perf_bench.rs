//! End-to-end performance measurement for the simulator hot path.
//!
//! Prints a JSON object with three families of numbers:
//!
//! * `placement_*_ns_per_op` — nanoseconds per placement decision (the
//!   Global Scheduler's per-kernel work) at several fleet sizes: the full
//!   scan ranking, the indexed top-3 ranking the platform now uses, the
//!   raw viability screen, and the indexed commit-host pick.
//! * `roofline` — a compute-vs-memory decomposition of the scan path:
//!   `stream_ns` is a single sequential pass over the host slab (the
//!   memory floor), `compute_ns` is what the scan spends on top of it
//!   (key extraction + sort), and `bound` names the dominant side.
//! * `end_to_end` — wall-clock seconds per full platform run and the
//!   derived events/sec.
//!
//! The committed `BENCH_pr6.json` pairs the scan and indexed columns of
//! one full invocation; CI runs `--smoke` on every push and gates on the
//! result via the `perf_gate` bin (see `.github/workflows/ci.yml`).
//!
//! Usage: `perf_bench [--smoke] [--iters N] [--out FILE] [--curve-out FILE]`

use std::hint::black_box;
use std::time::Instant;

use notebookos_bench::loaded_cluster;
use notebookos_cluster::{Cluster, ResourceBundle, ResourceRequest};
use notebookos_core::policy::{LeastLoaded, PlacementContext, PlacementPolicy, RoundRobin};
use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_trace::{generate, SyntheticConfig};

/// Every placement-path number for one fleet size, measured against a
/// single shared cluster so the scan and indexed columns see identical
/// load shapes.
struct FleetNumbers {
    hosts: usize,
    /// Full least-loaded scan ranking (screen + key capture + sort).
    rank_scan_ns: f64,
    /// Indexed top-3 ranking — the platform's steady-state decision.
    rank_top3_ns: f64,
    /// The shared SR-cap viability screen alone.
    viable_ns: f64,
    /// Indexed best-commit pick (reservation/batch/migration path).
    best_commit_ns: f64,
    /// Memory floor: one sequential pass over the host slab.
    stream_ns: f64,
}

/// Times `op` over `iters` iterations after `iters / 10 + 1` warm-up
/// calls, returning mean ns/op.
fn time_ns(iters: u32, mut op: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        op();
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Measures every placement family on one `hosts`-sized fleet. The scan
/// families down-scale their iteration count with fleet size (the op is
/// O(n)); the indexed families keep the full count — that contrast is
/// the point of the committed curve.
fn bench_fleet(hosts: usize, iters: u32) -> FleetNumbers {
    let cluster = loaded_cluster(hosts);
    let req = ResourceRequest::one_gpu();
    let ctx = PlacementContext {
        cluster: &cluster,
        request: &req,
        replication_factor: 3,
    };
    let scan_iters = (iters / u32::try_from(hosts / 256).unwrap_or(u32::MAX).max(1)).max(50);

    let mut policy = LeastLoaded::default();
    let mut out = Vec::new();
    // The fixture builds through `host_mut`, so the first indexed query
    // pays the one-time rebuild; the warm-up inside `time_ns` absorbs it.
    let rank_top3_ns = time_ns(iters, || {
        let total = policy.rank_top_into(&ctx, 3, &mut out);
        assert!(total >= out.len(), "total counts the whole viable set");
    });
    let best_commit_ns = time_ns(iters, || {
        black_box(cluster.best_commit_host(&req));
    });

    let mut scan_policy = LeastLoaded::default();
    let rank_scan_ns = time_ns(scan_iters, || {
        scan_policy.rank_into(&ctx, &mut out);
        assert_eq!(out.len(), hosts, "every host stays viable");
    });
    let mut viable = notebookos_cluster::Viability::default();
    let viable_ns = time_ns(scan_iters, || {
        cluster.viable_hosts_into(&req, 3, 1.0, &mut viable);
    });
    let stream_ns = time_ns(scan_iters, || {
        let sum: u64 = cluster
            .hosts()
            .iter()
            .map(|h| u64::from(h.idle_gpus()))
            .sum();
        black_box(sum);
    });
    FleetNumbers {
        hosts,
        rank_scan_ns,
        rank_top3_ns,
        viable_ns,
        best_commit_ns,
        stream_ns,
    }
}

/// Worst-case RoundRobin fleet: every host subscribed past the SR cap,
/// so the within-cap pass finds nothing and the over-cap rotation serves
/// the whole answer — the shape that used to degrade the indexed walk
/// back to O(n). The committed curve must stay flat across fleet sizes.
fn over_cap_cluster(hosts: usize) -> Cluster {
    let mut cluster = Cluster::with_hosts(hosts, ResourceBundle::p3_16xlarge());
    let sub = ResourceRequest::new(4_000, 16_384, 4, 16);
    for host in 0..hosts as u64 {
        for _ in 0..7 {
            assert!(cluster.subscribe(host, &sub), "host covers the request");
        }
    }
    cluster
}

/// RoundRobin top-3 against the all-over-cap fleet, ns/op.
fn bench_round_robin_worst(hosts: usize, iters: u32) -> f64 {
    let cluster = over_cap_cluster(hosts);
    let req = ResourceRequest::one_gpu();
    let ctx = PlacementContext {
        cluster: &cluster,
        request: &req,
        replication_factor: 3,
    };
    let mut policy = RoundRobin::default();
    let mut out = Vec::new();
    time_ns(iters, || {
        let total = policy.rank_top_into(&ctx, 3, &mut out);
        assert_eq!(total, hosts, "every over-cap host stays viable");
        assert_eq!(out.len(), 3.min(hosts), "the rotation fills the pick");
    })
}

struct EndToEnd {
    scenario: &'static str,
    runs: u32,
    wall_s_per_run: f64,
    events_per_run: u64,
    events_per_sec: f64,
    executions_per_sec: f64,
}

impl EndToEnd {
    fn to_json(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"runs\": {}, \"wall_s_per_run\": {:.4}, \
             \"events_per_run\": {}, \"events_per_sec\": {:.1}, \"executions_per_sec\": {:.1}}}",
            self.scenario,
            self.runs,
            self.wall_s_per_run,
            self.events_per_run,
            self.events_per_sec,
            self.executions_per_sec,
        )
    }
}

/// Full NotebookOS platform runs over `workload`; events/sec is the
/// number of simulation events dispatched divided by wall time. A
/// non-zero `initial_hosts` pins the fleet floor there, so placement and
/// commit/release run against a large cluster every event.
fn bench_end_to_end(
    scenario: &'static str,
    workload: &SyntheticConfig,
    runs: u32,
    initial_hosts: u32,
) -> EndToEnd {
    let trace = generate(workload, 99);
    let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
    if initial_hosts > 0 {
        config.initial_hosts = initial_hosts;
        config.autoscale.min_hosts = initial_hosts;
    }
    // Warm-up run (page in the trace, allocator, branch predictors).
    let _ = Platform::run(config.clone(), trace.clone());
    let mut events = 0u64;
    let mut executions = 0u64;
    let start = Instant::now();
    for _ in 0..runs {
        let world = Platform::run_for_inspection(config.clone(), trace.clone());
        events += world.events_processed();
        executions += world.metrics().counters.executions;
    }
    let wall = start.elapsed().as_secs_f64();
    EndToEnd {
        scenario,
        runs,
        wall_s_per_run: wall / f64::from(runs),
        events_per_run: events / u64::from(runs),
        events_per_sec: events as f64 / wall,
        executions_per_sec: executions as f64 / wall,
    }
}

fn json_map(pairs: impl IntoIterator<Item = (usize, f64)>) -> String {
    let items: Vec<String> = pairs
        .into_iter()
        .map(|(hosts, ns)| format!("\"{hosts}\": {ns:.1}"))
        .collect();
    format!("{{{}}}", items.join(", "))
}

fn roofline_json(n: &FleetNumbers) -> String {
    let compute_ns = (n.rank_scan_ns - n.stream_ns).max(0.0);
    let bound = if n.stream_ns * 2.0 >= n.rank_scan_ns {
        "memory"
    } else {
        "compute"
    };
    format!(
        "{{\"hosts\": {}, \"scan_ns\": {:.1}, \"stream_ns\": {:.1}, \
         \"compute_ns\": {:.1}, \"bound\": \"{bound}\"}}",
        n.hosts, n.rank_scan_ns, n.stream_ns, compute_ns,
    )
}

fn write_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("writing {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("perf_bench: wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut iters: u32 = 2_000;
    let mut out: Option<String> = None;
    let mut curve_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters takes a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--out takes a file path");
                    std::process::exit(2);
                }));
            }
            "--curve-out" => {
                curve_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--curve-out takes a file path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: \
                     perf_bench [--smoke] [--iters N] [--out FILE] [--curve-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let fleets: &[usize] = if smoke {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024, 10_000, 100_000]
    };
    let numbers: Vec<FleetNumbers> = fleets.iter().map(|&h| bench_fleet(h, iters)).collect();
    let rr_worst: Vec<(usize, f64)> = fleets
        .iter()
        .map(|&h| (h, bench_round_robin_worst(h, iters)))
        .collect();

    // The fleet-scale scenario keeps 256 hosts alive for the whole run,
    // so per-event cluster work dominates the wall time — the number the
    // hot-path optimization moves most.
    let fleet_workload = SyntheticConfig {
        sessions: 400,
        span_s: 4.0 * 3600.0,
        ..SyntheticConfig::excerpt_17_5h()
    };
    let cases: Vec<EndToEnd> = if smoke {
        vec![bench_end_to_end("smoke", &SyntheticConfig::smoke(), 10, 0)]
    } else {
        vec![
            bench_end_to_end("excerpt-17.5h", &SyntheticConfig::excerpt_17_5h(), 30, 0),
            bench_end_to_end("fleet-256", &fleet_workload, 20, 256),
        ]
    };
    let e2e_json: Vec<String> = cases.iter().map(EndToEnd::to_json).collect();
    let roofline: Vec<String> = numbers.iter().map(roofline_json).collect();

    let json = format!(
        "{{\n  \"placement_rank_ns_per_op\": {},\n  \
         \"placement_rank_top3_ns_per_op\": {},\n  \
         \"viable_hosts_ns_per_op\": {},\n  \
         \"best_commit_ns_per_op\": {},\n  \
         \"round_robin_worst_ns_per_op\": {},\n  \
         \"roofline\": [{}],\n  \
         \"end_to_end\": [{}]\n}}",
        json_map(numbers.iter().map(|n| (n.hosts, n.rank_scan_ns))),
        json_map(numbers.iter().map(|n| (n.hosts, n.rank_top3_ns))),
        json_map(numbers.iter().map(|n| (n.hosts, n.viable_ns))),
        json_map(numbers.iter().map(|n| (n.hosts, n.best_commit_ns))),
        json_map(rr_worst.iter().copied()),
        roofline.join(", "),
        e2e_json.join(", "),
    );
    println!("{json}");
    if let Some(path) = out {
        write_file(&path, &format!("{json}\n"));
    }
    if let Some(path) = curve_out {
        // The scaling-curve artifact CI uploads next to BENCH_pr6.json:
        // scan vs indexed ns/op per fleet size, nothing else.
        let curve = format!(
            "{{\n  \"scan_rank_ns_per_op\": {},\n  \"indexed_rank_top3_ns_per_op\": {}\n}}\n",
            json_map(numbers.iter().map(|n| (n.hosts, n.rank_scan_ns))),
            json_map(numbers.iter().map(|n| (n.hosts, n.rank_top3_ns))),
        );
        write_file(&path, &curve);
    }
}
