//! Kill-anywhere chaos drill over WAL-backed replicated kernels.
//!
//! Runs an uninterrupted golden cluster and a WAL-backed chaos cluster
//! over the same command stream, fail-stops every replica at least once
//! at pseudo-random points, recovers each via the §3.2.5 heartbeat
//! detector + recreate path, and exits nonzero unless every replica's
//! recovered committed state is byte-identical to the golden run. The
//! report decomposes each cycle into detect / failover / WAL-replay /
//! catch-up latency and includes the measured fsync cost per append in
//! both durability modes.
//!
//! Usage:
//!
//! ```text
//! chaos_drill [--replicas N] [--commands N] [--cycles N] [--seed N]
//!             [--fsync-batch N] [--out FILE] [--smoke]
//! ```
//!
//! `--smoke` is the CI job: 3 kill/restart cycles (one per replica) over
//! a short stream, a few wall-clock seconds end to end.

use std::process::ExitCode;

use notebookos_bench::chaos::{run_chaos_drill, ChaosOpts};
use notebookos_bench::EVAL_SEED;
use notebookos_jupyter::Json;

const USAGE: &str = "chaos_drill [--replicas N] [--commands N] [--cycles N] [--seed N] \
                     [--fsync-batch N] [--out FILE] [--smoke]";

struct Cli {
    opts: ChaosOpts,
    smoke: bool,
    out: Option<String>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: ChaosOpts::new(EVAL_SEED),
        smoke: false,
        out: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} takes a value; usage: {USAGE}"))
        };
        let positive = |flag: &str, v: String| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{flag} takes a positive integer; usage: {USAGE}"))
        };
        match arg.as_str() {
            "--replicas" => {
                cli.opts.replicas = positive("--replicas", value("--replicas")?)? as usize;
            }
            "--commands" => {
                cli.opts.commands = positive("--commands", value("--commands")?)? as usize;
            }
            "--cycles" => cli.opts.cycles = positive("--cycles", value("--cycles")?)? as usize,
            "--seed" => {
                cli.opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| format!("--seed takes an integer; usage: {USAGE}"))?;
            }
            "--fsync-batch" => {
                cli.opts.fsync_batch = positive("--fsync-batch", value("--fsync-batch")?)? as usize;
            }
            "--out" => cli.out = Some(value("--out")?),
            "--smoke" => {
                let seed = cli.opts.seed;
                cli.smoke = true;
                cli.opts = ChaosOpts::smoke(seed);
            }
            other => return Err(format!("unknown argument {other:?}; usage: {USAGE}")),
        }
    }
    if cli.opts.replicas < 3 {
        return Err("--replicas must be at least 3 (quorum)".into());
    }
    if cli.opts.commands < cli.opts.cycles {
        return Err("--commands must be at least --cycles".into());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("chaos_drill: {message}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "chaos_drill: {} replicas, {} commands, {} kill/restart cycles, seed {}, \
         fsync batch {}",
        cli.opts.replicas, cli.opts.commands, cli.opts.cycles, cli.opts.seed, cli.opts.fsync_batch,
    );

    let started = std::time::Instant::now();
    let report = run_chaos_drill(&cli.opts);
    let elapsed = started.elapsed().as_secs_f64();

    println!("{}", report.render());
    println!("wall-clock: {elapsed:.2}s elapsed");

    if let Some(path) = &cli.out {
        let json: Json = report.to_json();
        if let Err(error) = std::fs::write(path, json.encode()) {
            eprintln!("chaos_drill: writing {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("chaos_drill: report written to {path}");
    }

    if !report.state_match {
        eprintln!(
            "chaos_drill: FAIL — recovered state diverged from the golden run: {}",
            report.mismatch.as_deref().unwrap_or("unknown"),
        );
        return ExitCode::FAILURE;
    }
    if report.replicas_killed < cli.opts.replicas {
        eprintln!(
            "chaos_drill: FAIL — only {} of {} replicas were killed",
            report.replicas_killed, cli.opts.replicas,
        );
        return ExitCode::FAILURE;
    }
    if cli.smoke {
        eprintln!(
            "chaos_drill: SMOKE OK — {} replicas each killed and recovered, \
             {} commands byte-identical, fsync {:.1}x over batched",
            report.replicas_killed,
            report.golden_commands,
            report.fsync_cost.slowdown(),
        );
    }
    ExitCode::SUCCESS
}
