//! Fig. 20 — active user-submitted trainings and active user sessions over
//! the full 90-day "summer" trace.

use notebookos_bench::{fmt0, summer_trace};
use notebookos_metrics::Table;

fn main() {
    let trace = summer_trace();
    let sessions = trace.active_sessions_timeline();
    let trainings = trace.active_trainings_timeline();
    let span = trace.span_s();

    let mut table = Table::new(
        "Fig 20 — active trainings (left axis) and sessions (right axis)",
        &["day", "active trainings", "active sessions"],
    );
    for day in (0..=90).step_by(5) {
        let t = day as f64 * 86_400.0;
        table.row_owned(vec![
            day.to_string(),
            fmt0(trainings.value_at(t)),
            fmt0(sessions.value_at(t)),
        ]);
    }
    println!("{table}");

    let month = 30.0 * 86_400.0;
    let mut summary = Table::new(
        "Fig 20 — summary (paper: sessions 206/312/397 by month end, max 433; mean trainings 31/65/105 per month, max 141)",
        &["metric", "June", "July", "August"],
    );
    summary.row_owned(vec![
        "sessions at month end".into(),
        format!("{:.0}", sessions.value_at(month)),
        format!("{:.0}", sessions.value_at(2.0 * month)),
        format!("{:.0}", sessions.value_at((3.0 * month).min(span * 0.999))),
    ]);
    summary.row_owned(vec![
        "mean active trainings".into(),
        format!("{:.1}", trainings.time_mean(0.0, month)),
        format!("{:.1}", trainings.time_mean(month, 2.0 * month)),
        format!("{:.1}", trainings.time_mean(2.0 * month, span)),
    ]);
    println!("{summary}");
    println!(
        "Max sessions: {:.0} (paper 433); max trainings: {:.0} (paper 141).",
        sessions.max_value(),
        trainings.max_value()
    );
}
