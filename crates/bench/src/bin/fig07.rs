//! Fig. 7 — number of active user-submitted training tasks and active user
//! sessions during the 17.5-hour AdobeTrace excerpt.

use notebookos_bench::{excerpt_trace, fmt0};
use notebookos_metrics::Table;

fn main() {
    let trace = excerpt_trace();
    let sessions = trace.active_sessions_timeline();
    let trainings = trace.active_trainings_timeline();
    let span = trace.span_s();

    let mut table = Table::new(
        "Fig 7 — active trainings (left axis) and sessions (right axis)",
        &["hour", "active trainings", "active sessions"],
    );
    for half_hour in 0..=35 {
        let t = half_hour as f64 * 1800.0;
        table.row_owned(vec![
            format!("{:.1}", t / 3600.0),
            fmt0(trainings.value_at(t)),
            fmt0(sessions.value_at(t)),
        ]);
    }
    println!("{table}");

    let mut summary = Table::new(
        "Fig 7 — summary (paper: sessions ramp 0->87, max 90; mean/median trainings 19.5/19, max 34)",
        &["metric", "value"],
    );
    summary.row_owned(vec![
        "sessions at end".into(),
        format!("{:.0}", sessions.value_at(span * 0.999)),
    ]);
    summary.row_owned(vec![
        "max sessions".into(),
        format!("{:.0}", sessions.max_value()),
    ]);
    summary.row_owned(vec![
        "mean trainings".into(),
        format!("{:.1}", trainings.time_mean(0.0, span)),
    ]);
    summary.row_owned(vec![
        "max trainings".into(),
        format!("{:.0}", trainings.max_value()),
    ]);
    summary.row_owned(vec![
        "trainings at end".into(),
        format!("{:.0}", trainings.value_at(span * 0.999)),
    ]);
    println!("{summary}");
}
