//! Fig. 8 — Provisioned-GPU timelines: Batch / NotebookOS / NotebookOS
//! (LCP) against the Oracle and Reservation curves, plus the GPU-hours
//! saved relative to Reservation.

use notebookos_bench::{excerpt_trace, fmt0, run_all_policies};
use notebookos_core::PolicyKind;
use notebookos_metrics::Table;

fn main() {
    let trace = excerpt_trace();
    let span = trace.span_s();
    let oracle = trace.oracle_gpu_timeline();
    let runs = run_all_policies(&trace);

    // Timeline series sampled hourly, as the figure plots them.
    let mut series = Table::new(
        "Fig 8 — provisioned GPUs over the 17.5-hour excerpt",
        &[
            "hour",
            "oracle",
            "reservation",
            "batch",
            "notebookos",
            "lcp",
        ],
    );
    let reservation = &runs
        .iter()
        .find(|(p, _)| *p == PolicyKind::Reservation)
        .expect("reservation run")
        .1;
    let pick = |p: PolicyKind| &runs.iter().find(|(q, _)| *q == p).expect("run").1;
    for hour in 0..=17 {
        let t = (hour as f64) * 3600.0;
        series.row_owned(vec![
            hour.to_string(),
            fmt0(oracle.value_at(t)),
            fmt0(reservation.provisioned_gpus.value_at(t)),
            fmt0(pick(PolicyKind::Batch).provisioned_gpus.value_at(t)),
            fmt0(pick(PolicyKind::NotebookOs).provisioned_gpus.value_at(t)),
            fmt0(pick(PolicyKind::NotebookOsLcp).provisioned_gpus.value_at(t)),
        ]);
    }
    println!("{series}");

    let mut summary = Table::new(
        "Fig 8 — GPU-hour totals (paper: NotebookOS saves ~1187.66, LCP ~1662.53 vs Reservation)",
        &["policy", "provisioned GPU-hours", "saved vs Reservation"],
    );
    let reserved_hours = reservation.provisioned_gpus.integral(0.0, span) / 3600.0;
    for (policy, m) in &runs {
        let provisioned = m.provisioned_gpus.integral(0.0, span) / 3600.0;
        summary.row_owned(vec![
            policy.to_string(),
            format!("{provisioned:.2}"),
            format!("{:.2}", reserved_hours - provisioned),
        ]);
    }
    println!("{summary}");
}
