//! Table 1 — models and datasets used in the evaluation, with their
//! application domains (and the state sizes the checkpoint traffic uses).

use notebookos_metrics::Table;
use notebookos_trace::table1_rows;

fn main() {
    let mut table = Table::new(
        "Table 1 — models and datasets per application domain",
        &["app domain", "dataset", "dataset MB", "model", "params MB"],
    );
    for (domain, dataset, model) in table1_rows() {
        table.row_owned(vec![
            domain.to_string(),
            dataset.name.to_string(),
            (dataset.size_bytes / 1_000_000).to_string(),
            model.name.to_string(),
            (model.param_bytes / 1_000_000).to_string(),
        ]);
    }
    println!("{table}");
}
