//! Figs. 16–19 — detailed end-to-end latency breakdown of execute-request
//! messages for each of the four policies (the appendix box plots).

use notebookos_bench::{excerpt_trace, run_all_policies};

fn main() {
    let trace = excerpt_trace();
    for (_, m) in run_all_policies(&trace) {
        println!("{}", m.breakdown.to_table());
    }
    println!(
        "Paper shape: Reservation/NotebookOS dominated by K Exec (8); Batch dominated by \
         GS P Rq (1) (queuing + cold containers); NotebookOS uniquely pays K PRP (6) \
         (executor election, tens of milliseconds); step 9 is asynchronous in NotebookOS."
    );
}
