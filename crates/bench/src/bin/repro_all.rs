//! Runs every table/figure regenerator — the one-shot reproduction of the
//! paper's evaluation section — fanned out over the sweep engine's worker
//! pool instead of the old one-at-a-time loop.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin repro_all
//! cargo run --release -p notebookos-bench --bin repro_all -- --smoke
//! cargo run --release -p notebookos-bench --bin repro_all -- --workers 2
//! # Split across two machines, then stitch the transcript back together:
//! cargo run ... --bin repro_all -- --smoke --shard 0/2 --out half-0.json
//! cargo run ... --bin repro_all -- --smoke --shard 1/2 --out half-1.json
//! cargo run ... --bin repro_all -- --merge half-0.json half-1.json
//! # Re-run only the regenerators that failed or never ran:
//! cargo run ... --bin repro_all -- --smoke --resume progress.json
//! ```
//!
//! Each regenerator runs as a child process with captured output; sections
//! are printed in the canonical artifact order however the pool finishes
//! them, so the transcript is deterministic. `--workers N` sizes the pool
//! (default: `NOTEBOOKOS_SWEEP_WORKERS` or the machine's cores).
//! `--smoke` skips the long-running regenerators (`fig12` and `fig14`,
//! which sweep multi-policy 90-day simulations) so CI can exercise the
//! whole pipeline quickly.
//!
//! `--shard I/M` runs only every `M`-th regenerator starting at `I`;
//! `--out FILE` persists the captured transcripts as a JSON manifest
//! (written atomically); `--resume FILE` skips regenerators the manifest
//! already records as successful and folds new results back into it;
//! `--merge FILES...` combines shard manifests and prints the full
//! canonical transcript without running anything.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::process::Command;
use std::time::Instant;

use notebookos_bench::sweep_cli::SweepCli;
use notebookos_core::sweep;
use notebookos_jupyter::Json;

const ALL: &[&str] = &[
    "table1", "fig02", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig16_19", "fig20",
];

/// Regenerators skipped under `--smoke`.
const SLOW: &[&str] = &["fig12", "fig14"];

const USAGE: &str = "repro_all [--smoke] [--workers N] [--shard I/M] [--out FILE] \
     [--resume FILE] [--merge FILES...]";

struct BinOutput {
    bin: &'static str,
    stdout: String,
    stderr: String,
    success: bool,
}

/// The canonical name behind a manifest key, so merged manifests only
/// ever hold known regenerators.
fn canonical(bin: &str) -> Result<&'static str, String> {
    ALL.iter()
        .copied()
        .find(|&b| b == bin)
        .ok_or_else(|| format!("unknown regenerator `{bin}` in manifest"))
}

/// Serializes captured outputs as a manifest: `{"smoke": bool, "bins":
/// {name: {"success": bool, "stdout": str, "stderr": str}}}`.
fn manifest_json(smoke: bool, outputs: &[BinOutput]) -> String {
    let mut bins = Json::object();
    for out in outputs {
        bins = bins.with(
            out.bin,
            Json::object()
                .with("success", out.success)
                .with("stdout", out.stdout.as_str())
                .with("stderr", out.stderr.as_str()),
        );
    }
    Json::object()
        .with("smoke", smoke)
        .with("bins", bins)
        .encode()
}

/// Loads a manifest back into `(smoke, outputs)`.
fn read_manifest(path: &Path) -> Result<(bool, Vec<BinOutput>), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("manifest {}: {e}", path.display()))?;
    let root = Json::parse(&text).map_err(|e| {
        format!(
            "manifest {} is not valid JSON ({e}); delete it to start over",
            path.display()
        )
    })?;
    let context = |m: &str| format!("manifest {}: {m}", path.display());
    let smoke = root
        .get("smoke")
        .and_then(Json::as_bool)
        .ok_or_else(|| context("missing `smoke`"))?;
    let bins = match root.get("bins") {
        Some(Json::Obj(map)) => map,
        _ => return Err(context("missing `bins` object")),
    };
    let mut outputs = Vec::with_capacity(bins.len());
    for (name, entry) in bins {
        let field = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| context(&format!("bin `{name}` missing `{key}`")))
        };
        outputs.push(BinOutput {
            bin: canonical(name).map_err(|e| context(&e))?,
            success: entry
                .get("success")
                .and_then(Json::as_bool)
                .ok_or_else(|| context(&format!("bin `{name}` missing `success`")))?,
            stdout: field("stdout")?,
            stderr: field("stderr")?,
        });
    }
    Ok((smoke, outputs))
}

/// Writes `text` to `path` via the sweep engine's `.tmp` + rename
/// staging, so a killed run cannot leave a truncated manifest that
/// poisons `--resume`.
fn write_manifest_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    sweep::write_atomic(path, |out| out.write_all(text.as_bytes()))
}

/// Prints the canonical-order transcript for `selected` bins and returns
/// whether every one of them is present and succeeded.
fn print_transcript(selected: &[&'static str], smoke: bool, outputs: &[BinOutput]) -> bool {
    let mut ok = true;
    for &bin in ALL {
        if smoke && SLOW.contains(&bin) {
            println!("\n################ {bin} (skipped in --smoke) ################");
            continue;
        }
        if !selected.contains(&bin) {
            println!("\n################ {bin} (not in this shard) ################");
            continue;
        }
        println!("\n################ {bin} ################\n");
        match outputs.iter().find(|o| o.bin == bin) {
            Some(out) => {
                print!("{}", out.stdout);
                if !out.success {
                    eprintln!("{bin} failed:\n{}", out.stderr);
                    ok = false;
                }
            }
            None => {
                eprintln!("{bin} missing from the manifest(s)");
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    // The flag grammar is exactly the sweep binaries' shared one; only
    // the execution side differs (child processes + manifests instead of
    // a SweepSpec).
    let cli = SweepCli::parse(std::env::args().skip(1), USAGE).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });
    // `--fsync` hardens the sweep engine's cell journal; repro_all
    // checkpoints through JSON manifests instead, so accepting the flag
    // here would silently do nothing.
    if cli.fsync {
        eprintln!("repro_all: --fsync applies to sweep-journal binaries only; usage: {USAGE}");
        std::process::exit(2);
    }
    let (smoke, workers) = (cli.smoke, cli.workers);
    // SweepCli::parse has already enforced that a --shard run names a
    // persistence target (--out/--resume), so captured transcripts can
    // always be merged or resumed.
    let (shard, out_path, resume_path, merge_paths) = (cli.shard, cli.out, cli.resume, cli.merge);

    // ------------------------------------------------------------------
    // Merge mode: stitch shard manifests back into one transcript.
    // ------------------------------------------------------------------
    if !merge_paths.is_empty() {
        let mut merged: BTreeMap<&'static str, BinOutput> = BTreeMap::new();
        let mut merged_smoke: Option<bool> = None;
        for path in &merge_paths {
            let (smoke, outputs) = read_manifest(path).unwrap_or_else(|e| {
                eprintln!("repro_all: {e}");
                std::process::exit(1);
            });
            if *merged_smoke.get_or_insert(smoke) != smoke {
                eprintln!("repro_all: cannot merge smoke and full manifests");
                std::process::exit(1);
            }
            for out in outputs {
                let name = out.bin;
                if merged.insert(name, out).is_some() {
                    eprintln!("repro_all: overlapping manifests — `{name}` appears twice");
                    std::process::exit(1);
                }
            }
        }
        let smoke = merged_smoke.unwrap_or(false);
        let outputs: Vec<BinOutput> = merged.into_values().collect();
        if let Some(path) = &out_path {
            write_manifest_atomic(path, &manifest_json(smoke, &outputs)).unwrap_or_else(|e| {
                eprintln!("repro_all: writing manifest {}: {e}", path.display());
                std::process::exit(1);
            });
        }
        // A merge must reconstruct the *complete* transcript: every
        // non-skipped regenerator, from whichever shard ran it.
        let selected: Vec<&'static str> = ALL
            .iter()
            .copied()
            .filter(|bin| !(smoke && SLOW.contains(bin)))
            .collect();
        if !print_transcript(&selected, smoke, &outputs) {
            std::process::exit(1);
        }
        println!("\nAll evaluation artifacts regenerated.");
        return;
    }

    // ------------------------------------------------------------------
    // Run mode (optionally sharded and/or resuming).
    // ------------------------------------------------------------------
    let selected: Vec<&'static str> = ALL
        .iter()
        .copied()
        .filter(|bin| !(smoke && SLOW.contains(bin)))
        .enumerate()
        .filter(|(i, _)| match shard {
            None => true,
            Some((index, total)) => i % total == index,
        })
        .map(|(_, bin)| bin)
        .collect();

    // Under --resume, keep every prior record (a failure's captured
    // stderr from another shard must survive this rewrite), skip
    // launching only the bins already recorded as successful, and retry
    // recorded failures that fall in this selection.
    let mut prior: Vec<BinOutput> = Vec::new();
    if let Some(path) = &resume_path {
        if path.exists() {
            let (prior_smoke, outputs) = read_manifest(path).unwrap_or_else(|e| {
                eprintln!("repro_all: {e}");
                std::process::exit(1);
            });
            if prior_smoke != smoke {
                eprintln!(
                    "repro_all: manifest {} was recorded with smoke={prior_smoke}, \
                     refusing to resume with smoke={smoke}",
                    path.display()
                );
                std::process::exit(1);
            }
            prior = outputs;
        }
    }
    let to_run: Vec<&'static str> = selected
        .iter()
        .copied()
        .filter(|bin| !prior.iter().any(|o| &o.bin == bin && o.success))
        .collect();
    let resumed = selected.len() - to_run.len();

    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory").to_path_buf();
    let started = Instant::now();
    let total = to_run.len();
    // `--workers N` is the overall concurrency budget (default: the
    // machine's cores). Children also parallelize internally
    // (run_all_policies), so the budget is divided between the process
    // pool and each child's thread pool: concurrent children × threads
    // per child never exceeds the budget.
    let budget = if workers == 0 {
        sweep::default_workers()
    } else {
        workers
    };
    let pool_workers = budget.min(total.max(1)).max(1);
    let child_workers = (budget / pool_workers).max(1);
    eprintln!(
        "repro_all: {total} artifacts on {pool_workers} workers ({child_workers} per child{})",
        if resumed == 0 {
            String::new()
        } else {
            format!(", {resumed} resumed from manifest")
        }
    );
    let mut outputs = sweep::parallel_map_indexed(
        to_run,
        workers,
        |_, bin| {
            let path = dir.join(bin);
            let out = Command::new(&path)
                .env("NOTEBOOKOS_SWEEP_WORKERS", child_workers.to_string())
                .output()
                .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
            BinOutput {
                bin,
                stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
                success: out.status.success(),
            }
        },
        |_, out: &BinOutput| {
            eprintln!(
                "  [{:6.1}s] {} {}",
                started.elapsed().as_secs_f64(),
                out.bin,
                if out.success { "done" } else { "FAILED" }
            );
        },
    );
    // Fresh results supersede their prior entries (retried failures);
    // everything else in the manifest — other shards' records included —
    // is carried through untouched.
    let fresh: std::collections::HashSet<&'static str> = outputs.iter().map(|o| o.bin).collect();
    outputs.extend(prior.into_iter().filter(|old| !fresh.contains(old.bin)));

    // Persist before printing: a transcript consumer killing the pipe
    // must not cost us the recorded progress. A failed manifest write is
    // a runtime error, not a usage error — report it, still print the
    // captured transcript (hours of child runs must not vanish), and
    // exit non-zero at the end.
    let manifest = manifest_json(smoke, &outputs);
    let mut manifest_failed = false;
    for path in resume_path.iter().chain(out_path.iter()) {
        if let Err(e) = write_manifest_atomic(path, &manifest) {
            eprintln!("repro_all: writing manifest {}: {e}", path.display());
            manifest_failed = true;
        }
    }

    // Canonical-order transcript, independent of completion order.
    if !print_transcript(&selected, smoke, &outputs) || manifest_failed {
        std::process::exit(1);
    }
    if shard.is_some() {
        println!("\nShard complete; merge the manifests for the full transcript.");
    } else {
        println!("\nAll evaluation artifacts regenerated.");
    }
    // Timing goes to stderr so the stdout transcript is bit-identical
    // whatever the worker count.
    eprintln!(
        "repro_all: finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
