//! Runs every table/figure regenerator in sequence — the one-shot
//! reproduction of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin repro_all
//! ```

use std::process::Command;

fn main() {
    let binaries = [
        "table1", "fig02", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig16_19", "fig20",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory");
    for bin in binaries {
        println!("\n################ {bin} ################\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll evaluation artifacts regenerated.");
}
