//! Runs every table/figure regenerator in sequence — the one-shot
//! reproduction of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin repro_all
//! cargo run --release -p notebookos-bench --bin repro_all -- --smoke
//! ```
//!
//! `--smoke` skips the long-running regenerators (`fig12` and `fig14`,
//! which sweep multi-policy 90-day simulations) so CI can exercise the
//! whole pipeline in about a second.

use std::process::Command;

const ALL: &[&str] = &[
    "table1", "fig02", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig16_19", "fig20",
];

/// Regenerators skipped under `--smoke`.
const SLOW: &[&str] = &["fig12", "fig14"];

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument {other:?}; usage: repro_all [--smoke]");
                std::process::exit(2);
            }
        }
    }

    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory");
    for &bin in ALL {
        if smoke && SLOW.contains(&bin) {
            println!("\n################ {bin} (skipped in --smoke) ################");
            continue;
        }
        println!("\n################ {bin} ################\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll evaluation artifacts regenerated.");
}
