//! Runs every table/figure regenerator — the one-shot reproduction of the
//! paper's evaluation section — fanned out over the sweep engine's worker
//! pool instead of the old one-at-a-time loop.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin repro_all
//! cargo run --release -p notebookos-bench --bin repro_all -- --smoke
//! cargo run --release -p notebookos-bench --bin repro_all -- --workers 2
//! ```
//!
//! Each regenerator runs as a child process with captured output; sections
//! are printed in the canonical artifact order however the pool finishes
//! them, so the transcript is deterministic. `--workers N` sizes the pool
//! (default: `NOTEBOOKOS_SWEEP_WORKERS` or the machine's cores).
//! `--smoke` skips the long-running regenerators (`fig12` and `fig14`,
//! which sweep multi-policy 90-day simulations) so CI can exercise the
//! whole pipeline quickly.

use std::process::Command;
use std::time::Instant;

use notebookos_core::sweep;

const ALL: &[&str] = &[
    "table1", "fig02", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig16_19", "fig20",
];

/// Regenerators skipped under `--smoke`.
const SLOW: &[&str] = &["fig12", "fig14"];

struct BinOutput {
    bin: &'static str,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    success: bool,
}

fn main() {
    let mut smoke = false;
    let mut workers = 0usize; // 0 = sweep::default_workers()
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--workers takes a positive integer");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: repro_all [--smoke] [--workers N]");
                std::process::exit(2);
            }
        }
    }

    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin directory").to_path_buf();
    let bins: Vec<&'static str> = ALL
        .iter()
        .copied()
        .filter(|bin| !(smoke && SLOW.contains(bin)))
        .collect();

    let started = Instant::now();
    let total = bins.len();
    // `--workers N` is the overall concurrency budget (default: the
    // machine's cores). Children also parallelize internally
    // (run_all_policies), so the budget is divided between the process
    // pool and each child's thread pool: concurrent children × threads
    // per child never exceeds the budget.
    let budget = if workers == 0 {
        sweep::default_workers()
    } else {
        workers
    };
    let pool_workers = budget.min(total).max(1);
    let child_workers = (budget / pool_workers).max(1);
    eprintln!("repro_all: {total} artifacts on {pool_workers} workers ({child_workers} per child)");
    let outputs = sweep::parallel_map_indexed(
        bins,
        workers,
        |_, bin| {
            let path = dir.join(bin);
            let out = Command::new(&path)
                .env("NOTEBOOKOS_SWEEP_WORKERS", child_workers.to_string())
                .output()
                .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
            BinOutput {
                bin,
                stdout: out.stdout,
                stderr: out.stderr,
                success: out.status.success(),
            }
        },
        |_, out: &BinOutput| {
            eprintln!(
                "  [{:6.1}s] {} {}",
                started.elapsed().as_secs_f64(),
                out.bin,
                if out.success { "done" } else { "FAILED" }
            );
        },
    );

    // Canonical-order transcript, independent of completion order.
    let mut failed = false;
    for &bin in ALL {
        if smoke && SLOW.contains(&bin) {
            println!("\n################ {bin} (skipped in --smoke) ################");
            continue;
        }
        println!("\n################ {bin} ################\n");
        let out = outputs
            .iter()
            .find(|o| o.bin == bin)
            .expect("every bin ran");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.success {
            eprintln!("{bin} failed:\n{}", String::from_utf8_lossy(&out.stderr));
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    // Timing goes to stderr so the stdout transcript is bit-identical
    // whatever the worker count.
    println!("\nAll evaluation artifacts regenerated.");
    eprintln!(
        "repro_all: finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
