//! Fig. 2 — workload characteristics of the three cluster traces:
//! (a) task-duration CDFs, (b) per-session IAT CDFs, (c) GPU-utilization
//! CDFs for the Adobe-shaped trace, (d) reserved vs utilized GPUs/CPUs over
//! the 90-day window.

use notebookos_bench::{fmt0, run_policy, summer_trace, EVAL_SEED};
use notebookos_core::PolicyKind;
use notebookos_metrics::{Cdf, Table};
use notebookos_trace::{sample_distributions, TraceProfile};

fn cdf_rows(title: &str, unit: &str, mut cdfs: Vec<Cdf>) {
    let mut table = Table::new(
        title,
        &[
            "trace",
            &format!("p25 ({unit})"),
            &format!("p50 ({unit})"),
            &format!("p75 ({unit})"),
            &format!("p90 ({unit})"),
            &format!("p99 ({unit})"),
        ],
    );
    for cdf in &mut cdfs {
        table.row_owned(vec![
            cdf.name().to_string(),
            format!("{:.0}", cdf.percentile(25.0)),
            format!("{:.0}", cdf.percentile(50.0)),
            format!("{:.0}", cdf.percentile(75.0)),
            format!("{:.0}", cdf.percentile(90.0)),
            format!("{:.0}", cdf.percentile(99.0)),
        ]);
    }
    println!("{table}");
}

fn main() {
    let profiles = [
        TraceProfile::adobe(),
        TraceProfile::alibaba(),
        TraceProfile::philly(),
    ];
    let n = 50_000;

    // (a) + (b): duration and IAT CDFs.
    let mut durations = Vec::new();
    let mut iats = Vec::new();
    for (i, profile) in profiles.iter().enumerate() {
        let (d, t) = sample_distributions(profile, n, EVAL_SEED + i as u64);
        let mut dc = Cdf::new(profile.name);
        dc.record_all(d);
        durations.push(dc);
        let mut ic = Cdf::new(profile.name);
        ic.record_all(t);
        iats.push(ic);
    }
    cdf_rows(
        "Fig 2(a) — task duration CDF (paper medians: Adobe 120 s, Philly 621 s, Alibaba 957 s)",
        "s",
        durations,
    );
    cdf_rows(
        "Fig 2(b) — per-session IAT CDF (paper medians: Adobe 300 s, Philly 44 s, Alibaba 38 s)",
        "s",
        iats,
    );

    // (c): GPU utilization CDFs on the Adobe-shaped 90-day workload.
    let trace = summer_trace();
    let mut busy = trace.busy_fraction_cdf("session GPU-active fraction");
    let mut table = Table::new(
        "Fig 2(c) — session GPU-utilization CDF (paper: 90 % of sessions use GPUs <= 31.13 % of lifetime)",
        &["percentile", "fraction of lifetime GPUs active"],
    );
    for p in [25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        table.row_owned(vec![
            format!("p{p:.0}"),
            format!("{:.4}", busy.percentile(p)),
        ]);
    }
    let zero_frac = busy.fraction_at_most(0.0);
    table.row_owned(vec![
        "sessions completely idle".to_string(),
        format!("{:.1}%", zero_frac * 100.0),
    ]);
    println!("{table}");

    // (d): reserved vs utilized GPUs over 90 days under Reservation.
    let metrics = run_policy(PolicyKind::Reservation, &trace);
    let mut table = Table::new(
        "Fig 2(d) — reserved vs utilized GPUs over 90 days (Reservation policy)",
        &["day", "reserved GPUs", "utilized GPUs", "utilization %"],
    );
    for day in (0..=90).step_by(10) {
        let t = day as f64 * 86_400.0;
        let reserved = metrics.reserved_gpus.value_at(t);
        let utilized = metrics.committed_gpus.value_at(t);
        let pct = if reserved > 0.0 {
            utilized / reserved * 100.0
        } else {
            0.0
        };
        table.row_owned(vec![
            day.to_string(),
            fmt0(reserved),
            fmt0(utilized),
            format!("{pct:.1}"),
        ]);
    }
    let span = trace.span_s();
    let reserved_mean = metrics.reserved_gpus.time_mean(0.0, span);
    let utilized_mean = metrics.committed_gpus.time_mean(0.0, span);
    table.row_owned(vec![
        "mean".to_string(),
        format!("{reserved_mean:.1}"),
        format!("{utilized_mean:.1}"),
        format!("{:.1}", utilized_mean / reserved_mean.max(1e-9) * 100.0),
    ]);
    println!("{table}");

    // CPU series (Fig. 2(d) plots CPUs on the secondary axis): reserved
    // vCPUs follow session reservations; utilized vCPUs follow active
    // trainings. Both derive from the trace directly.
    let mut cpu_table = Table::new(
        "Fig 2(d) — reserved vs utilized vCPUs over 90 days",
        &["day", "reserved vCPUs", "utilized vCPUs"],
    );
    let mut reserved_cpu = notebookos_metrics::Timeline::new("reserved-cpus");
    let mut utilized_cpu = notebookos_metrics::Timeline::new("utilized-cpus");
    let mut deltas_res: Vec<(f64, f64)> = Vec::new();
    let mut deltas_use: Vec<(f64, f64)> = Vec::new();
    for s in &trace.sessions {
        let vcpus = s.millicpus as f64 / 1000.0;
        deltas_res.push((s.start_s, vcpus));
        deltas_res.push((s.end_s, -vcpus));
        for e in &s.events {
            deltas_use.push((e.submit_s, vcpus));
            deltas_use.push((e.end_s(), -vcpus));
        }
    }
    for (deltas, timeline) in [
        (&mut deltas_res, &mut reserved_cpu),
        (&mut deltas_use, &mut utilized_cpu),
    ] {
        deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut level = 0.0;
        for &(t, d) in deltas.iter() {
            level += d;
            timeline.set(t, level.max(0.0));
        }
    }
    for day in (0..=90).step_by(15) {
        let t = day as f64 * 86_400.0;
        cpu_table.row_owned(vec![
            day.to_string(),
            fmt0(reserved_cpu.value_at(t)),
            fmt0(utilized_cpu.value_at(t)),
        ]);
    }
    println!("{cpu_table}");
    println!(
        "Paper: by the end of the 3-month period only ~15% of reserved GPUs are actively utilized."
    );
}
