//! Elasticity control-plane comparison: runs NotebookOS under all three
//! elasticity policies (threshold / shape-aware / hysteresis) across the
//! three stress scenarios they were built for — flash-crowd arrivals,
//! diurnal arrivals, and a heterogeneous host fleet — and reports
//! per-policy cost/latency aggregates with 95 % CIs. Per-run records are
//! persisted as CSV + JSON so figures re-render without re-running.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin elasticity_sweep -- \
//!     [--smoke] [--workers N] [--out DIR]
//! ```

use notebookos_core::sweep::{Scenario, SweepSpec};
use notebookos_core::{ElasticityKind, PlatformConfig, PolicyKind};
use notebookos_metrics::Table;
use notebookos_trace::{ArrivalPattern, SyntheticConfig};

/// Base configuration for every run: the NotebookOS evaluation setup with
/// the pre-warm reconcile loop enabled (the control plane under test).
fn elastic_config(policy: PolicyKind) -> PlatformConfig {
    let mut config = PlatformConfig::evaluation(policy);
    config.autoscale.prewarm_reconcile_interval_s = Some(120.0);
    config
}

/// The full-scale scenario axis: the three stress patterns at excerpt
/// scale (§5.2's 17.5-hour window).
fn full_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::flash_crowd(),
        Scenario::diurnal(),
        Scenario::heterogeneous_hosts(),
    ]
}

/// Smoke mode shrinks the fleet floor so quarter-scale workloads still
/// exercise scale-out and scale-in.
fn smoke_config(policy: PolicyKind) -> PlatformConfig {
    let mut config = elastic_config(policy);
    config.initial_hosts = 3;
    config.autoscale.min_hosts = 2;
    config.autoscale.scaling_buffer_hosts = 0;
    config
}

/// CI-speed variants: same stress shapes, quarter-scale populations and
/// windows, tuned so each scenario still trips its control-plane path
/// (scale-out bursts, diurnal troughs, mixed-shape demand).
fn smoke_scenarios() -> Vec<Scenario> {
    let flash = SyntheticConfig {
        sessions: 18,
        span_s: 3.0 * 3600.0,
        ..SyntheticConfig::flash_crowd_17_5h()
    };
    let diurnal = SyntheticConfig {
        sessions: 24,
        span_s: 3.0 * 3600.0,
        long_lived_fraction: 0.4,
        arrival: ArrivalPattern::Diurnal {
            period_s: 3600.0,
            peak_to_trough: 4.0,
        },
        ..SyntheticConfig::excerpt_17_5h()
    };
    // Mostly-small kernels with an 8-GPU tail on a tiny mixed fleet: the
    // workload the shape-aware regression test uses, where tick deficits
    // spill into 4-GPU boxes while 8-GPU shortfalls pull full trainers.
    let hetero = SyntheticConfig {
        sessions: 40,
        span_s: 3.0 * 3600.0,
        gpu_active_fraction: 0.7,
        long_lived_fraction: 0.9,
        gpu_demand: vec![(1, 0.6), (2, 0.25), (8, 0.15)],
        arrival: ArrivalPattern::FlashCrowd {
            waves: 2,
            wave_width_s: 600.0,
        },
    };
    vec![
        Scenario::new("flash-crowd", flash),
        Scenario::new("diurnal", diurnal),
        Scenario::new("heterogeneous-hosts", hetero).with_host_mix(vec![
            (notebookos_cluster::ResourceBundle::p3_16xlarge(), 2),
            (
                notebookos_cluster::ResourceBundle::new(32_000, 249_856, 4),
                2,
            ),
        ]),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let workers: usize = flag_value("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let out_dir = flag_value("--out").unwrap_or_else(|| "results/elasticity".to_string());

    let scenarios = if smoke {
        smoke_scenarios()
    } else {
        full_scenarios()
    };
    let seeds: Vec<u64> = if smoke {
        vec![1, 2]
    } else {
        (0..5).map(|i| 2026 + i).collect()
    };
    let spec = SweepSpec::new()
        .policies(vec![PolicyKind::NotebookOs])
        .all_elasticities()
        .seeds(seeds)
        .scenarios(scenarios.clone())
        .configure(if smoke { smoke_config } else { elastic_config })
        .workers(workers);
    let total_jobs = spec.jobs().len();
    eprintln!(
        "elasticity_sweep: {} runs ({} scenarios x {} elasticities x {} seeds)",
        total_jobs,
        scenarios.len(),
        ElasticityKind::ALL.len(),
        spec.seeds.len()
    );
    let report = spec.run_with_progress(|done, total| {
        eprintln!("  [{done}/{total}] runs complete");
    });

    for scenario in &scenarios {
        let mut table = Table::new(
            format!("NotebookOS elasticity policies — {}", scenario.name),
            &[
                "elasticity",
                "interactivity p50 (ms)",
                "provider cost ($)",
                "GPU-h saved",
                "scale-outs",
                "scale-ins",
                "shapes",
            ],
        );
        for kind in ElasticityKind::ALL {
            let Some(agg) = report.aggregate_cell(&scenario.name, PolicyKind::NotebookOs, kind)
            else {
                continue;
            };
            let shapes = report
                .runs_for_cell(&scenario.name, PolicyKind::NotebookOs, kind)
                .iter()
                .map(|r| r.metrics.distinct_shapes_provisioned())
                .max()
                .unwrap_or(0);
            table.row_owned(vec![
                kind.to_string(),
                format!(
                    "{:.1} ± {:.1}",
                    agg.interactivity_p50_ms.mean,
                    agg.interactivity_p50_ms.hi() - agg.interactivity_p50_ms.mean
                ),
                format!("{:.2}", agg.provider_cost_usd.mean),
                format!("{:.1}", agg.gpu_hours_saved.mean),
                format!("{:.1}", agg.scale_outs.mean),
                format!("{:.1}", agg.scale_ins.mean),
                format!("{shapes}"),
            ]);
        }
        println!("{table}");
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let csv = format!("{out_dir}/elasticity_sweep.csv");
    let json = format!("{out_dir}/elasticity_sweep.json");
    report.write_csv(&csv).expect("write CSV");
    report.write_json(&json).expect("write JSON");
    println!("per-run records: {csv} and {json} ({} runs)", report.len());

    // Control-plane sanity the CI smoke run enforces: the shape-aware
    // policy must actually diversify on the heterogeneous fleet.
    let diversified = report
        .runs_for_cell(
            "heterogeneous-hosts",
            PolicyKind::NotebookOs,
            ElasticityKind::ShapeAware,
        )
        .iter()
        .any(|r| r.metrics.distinct_shapes_provisioned() >= 2);
    let reconciled = report
        .runs
        .iter()
        .any(|r| r.metrics.counters.prewarms_reconciled > 0);
    assert!(
        reconciled,
        "prewarm reconcile loop never fired across the sweep"
    );
    assert!(
        diversified,
        "shape-aware stayed monoculture on the heterogeneous fleet"
    );
}
