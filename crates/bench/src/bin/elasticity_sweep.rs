//! Elasticity control-plane comparison: runs NotebookOS under all three
//! elasticity policies (threshold / shape-aware / hysteresis) across the
//! three stress scenarios they were built for — flash-crowd arrivals,
//! diurnal arrivals, and a heterogeneous host fleet — and reports
//! per-policy cost/latency aggregates with 95 % CIs. Per-run records are
//! persisted as JSON + CSV so figures re-render without re-running, and
//! the sweep shards, resumes, and merges like any other:
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin elasticity_sweep -- \
//!     [--smoke] [--workers N] [--shard I/M] [--out FILE] \
//!     [--resume FILE] [--fsync] [--merge FILES...]
//! ```
//!
//! `--fsync` (with `--resume`) upgrades the checkpoint journal to
//! per-record durability — each completed cell is fsynced, so it survives
//! power loss, not just process death — and prints the measured
//! µs/record cost of the upgrade before the sweep starts.
//!
//! `--out FILE` names the JSON report (default
//! `results/elasticity/elasticity_sweep.json` for unsharded runs; a
//! `--shard` run must name its own `--out` or `--resume` file so a
//! partial report can never clobber the default complete one); the
//! headline CSV is written next to it. Summary tables and the
//! control-plane sanity assertions only run when the report covers the
//! full matrix (partial shards just persist their cells).

use notebookos_bench::sweep_cli::SweepCli;
use notebookos_bench::{
    elastic_config, elastic_smoke_config, smoke_diurnal, smoke_flash_crowd, smoke_heterogeneous,
};
use notebookos_core::sweep::{Scenario, SweepSpec};
use notebookos_core::{ElasticityKind, PolicyKind};
use notebookos_metrics::Table;

const USAGE: &str =
    "elasticity_sweep [--smoke] [--workers N] [--shard I/M] [--out FILE] [--resume FILE] \
     [--fsync] [--merge FILES...]";

/// The full-scale scenario axis: the three stress patterns at excerpt
/// scale (§5.2's 17.5-hour window).
fn full_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::flash_crowd(),
        Scenario::diurnal(),
        Scenario::heterogeneous_hosts(),
    ]
}

/// CI-speed variants: same stress shapes, quarter-scale populations and
/// windows, tuned so each scenario still trips its control-plane path.
fn smoke_scenarios() -> Vec<Scenario> {
    vec![smoke_flash_crowd(), smoke_diurnal(), smoke_heterogeneous()]
}

fn main() {
    let mut cli = SweepCli::parse(std::env::args().skip(1), USAGE).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });
    // The default report path only applies to a plain full run — the
    // one mode guaranteed to produce the *complete* report. A shard must
    // name its own file (SweepCli::parse enforces --out/--resume), and a
    // merge (which may cover only a subset of shards) only writes where
    // explicitly told, so a partial report can never clobber a
    // previously completed default one. Parent directories are created
    // by the engine's atomic writer.
    let out = cli.out.take().or_else(|| {
        (cli.shard.is_none() && cli.merge.is_empty())
            .then(|| std::path::PathBuf::from("results/elasticity/elasticity_sweep.json"))
    });
    cli.out = out.clone();

    let scenarios = if cli.smoke {
        smoke_scenarios()
    } else {
        full_scenarios()
    };
    let seeds: Vec<u64> = if cli.smoke {
        vec![1, 2]
    } else {
        (0..5).map(|i| 2026 + i).collect()
    };
    let spec = SweepSpec::new()
        .policies(vec![PolicyKind::NotebookOs])
        .all_elasticities()
        .seeds(seeds)
        .scenarios(scenarios.clone())
        .configure(if cli.smoke {
            elastic_smoke_config
        } else {
            elastic_config
        });
    eprintln!(
        "elasticity_sweep: {} runs ({} scenarios x {} elasticities x {} seeds)",
        spec.total_jobs(),
        scenarios.len(),
        ElasticityKind::ALL.len(),
        spec.seeds.len()
    );
    let report = cli
        .execute(&spec, "elasticity_sweep")
        .unwrap_or_else(|err| {
            eprintln!("elasticity_sweep: {err}");
            std::process::exit(1);
        });

    if let Some(out) = &out {
        let csv = out.with_extension("csv");
        report.write_csv(&csv).expect("write CSV");
        println!(
            "per-run records: {} and {} ({} runs)",
            out.display(),
            csv.display(),
            report.len()
        );
    }

    if !SweepCli::is_complete(&spec, &report) {
        println!(
            "elasticity_sweep: partial report ({} of {} cells) — merge the shards or \
             --resume to complete it",
            report.len(),
            spec.total_jobs()
        );
        return;
    }

    for scenario in &scenarios {
        let mut table = Table::new(
            format!("NotebookOS elasticity policies — {}", scenario.name),
            &[
                "elasticity",
                "interactivity p50 (ms)",
                "provider cost ($)",
                "GPU-h saved",
                "scale-outs",
                "scale-ins",
                "shapes",
            ],
        );
        for kind in ElasticityKind::ALL {
            let Some(agg) = report.aggregate_cell(&scenario.name, PolicyKind::NotebookOs, kind)
            else {
                continue;
            };
            let shapes = report
                .runs_for_cell(&scenario.name, PolicyKind::NotebookOs, kind)
                .iter()
                .map(|r| r.metrics.distinct_shapes_provisioned())
                .max()
                .unwrap_or(0);
            table.row_owned(vec![
                kind.to_string(),
                format!(
                    "{:.1} ± {:.1}",
                    agg.interactivity_p50_ms.mean,
                    agg.interactivity_p50_ms.hi() - agg.interactivity_p50_ms.mean
                ),
                format!("{:.2}", agg.provider_cost_usd.mean),
                format!("{:.1}", agg.gpu_hours_saved.mean),
                format!("{:.1}", agg.scale_outs.mean),
                format!("{:.1}", agg.scale_ins.mean),
                format!("{shapes}"),
            ]);
        }
        println!("{table}");
    }

    // Control-plane sanity the CI smoke run enforces: the shape-aware
    // policy must actually diversify on the heterogeneous fleet.
    let diversified = report
        .runs_for_cell(
            "heterogeneous-hosts",
            PolicyKind::NotebookOs,
            ElasticityKind::ShapeAware,
        )
        .iter()
        .any(|r| r.metrics.distinct_shapes_provisioned() >= 2);
    let reconciled = report
        .runs
        .iter()
        .any(|r| r.metrics.counters.prewarms_reconciled > 0);
    assert!(
        reconciled,
        "prewarm reconcile loop never fired across the sweep"
    );
    assert!(
        diversified,
        "shape-aware stayed monoculture on the heterogeneous fleet"
    );
}
