//! Multi-seed variance study: §A.6 notes that re-running the workload
//! yields "approximately the same results, with small differences resulting
//! from scheduling decisions and other random factors". This binary
//! quantifies that through the sweep engine: the 17.5-hour excerpt runs
//! under NotebookOS across several seeds in parallel and the report's
//! aggregates give mean, stddev, CV, and a 95 % confidence interval for
//! the headline metrics.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin variance [n_seeds]
//! ```

use notebookos_core::sweep::{Scenario, SweepSpec};
use notebookos_core::PolicyKind;
use notebookos_metrics::{MeanCi, Table};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let scenario = Scenario::excerpt();
    let report = SweepSpec::new()
        .policies(vec![PolicyKind::NotebookOs])
        .seeds((0..n).map(|seed| 3000 + seed).collect())
        .scenarios(vec![scenario.clone()])
        .run();
    let agg = report
        .aggregate(&scenario.name, PolicyKind::NotebookOs)
        .expect("sweep produced runs");

    let mut table = Table::new(
        format!("NotebookOS across {n} seeds (17.5 h excerpt)"),
        &["metric", "mean", "stddev", "cv %", "95% CI"],
    );
    let rows: [(&str, MeanCi); 4] = [
        ("GPU-hours saved vs Reservation", agg.gpu_hours_saved),
        ("interactivity p50 (ms)", agg.interactivity_p50_ms),
        ("immediate commit rate (%)", agg.immediate_commit_pct),
        ("migrations", agg.migrations),
    ];
    for (name, stat) in rows {
        table.row_owned(vec![
            name.to_string(),
            format!("{:.2}", stat.mean),
            format!("{:.2}", stat.stddev),
            format!("{:.1}", stat.cv_percent()),
            format!("[{:.2}, {:.2}]", stat.lo(), stat.hi()),
        ]);
    }
    println!("{table}");
    println!(
        "Low coefficients of variation confirm §A.6: repeated runs produce\n\
         approximately the same results modulo scheduling randomness."
    );
}
