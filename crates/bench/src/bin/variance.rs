//! Multi-seed variance study: §A.6 notes that re-running the workload
//! yields "approximately the same results, with small differences resulting
//! from scheduling decisions and other random factors". This binary
//! quantifies that: it runs the 17.5-hour excerpt under NotebookOS across
//! several seeds and reports mean ± stddev of the headline metrics.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin variance [n_seeds]
//! ```

use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_metrics::Table;
use notebookos_trace::{generate, SyntheticConfig};

fn mean_std(values: &[f64]) -> (f64, f64) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let mut saved = Vec::new();
    let mut delay_p50 = Vec::new();
    let mut immediate = Vec::new();
    let mut migrations = Vec::new();
    for seed in 0..n {
        let trace = generate(&SyntheticConfig::excerpt_17_5h(), 3000 + seed);
        let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
        config.seed = 3000 + seed;
        let mut m = Platform::run(config, trace);
        saved.push(m.gpu_hours_saved_vs_reservation());
        delay_p50.push(m.interactivity_ms.percentile(50.0));
        immediate.push(m.counters.immediate_commit_rate() * 100.0);
        migrations.push(m.counters.migrations as f64);
    }

    let mut table = Table::new(
        format!("NotebookOS across {n} seeds (17.5 h excerpt)"),
        &["metric", "mean", "stddev", "cv %"],
    );
    for (name, values) in [
        ("GPU-hours saved vs Reservation", &saved),
        ("interactivity p50 (ms)", &delay_p50),
        ("immediate commit rate (%)", &immediate),
        ("migrations", &migrations),
    ] {
        let (mean, std) = mean_std(values);
        table.row_owned(vec![
            name.to_string(),
            format!("{mean:.2}"),
            format!("{std:.2}"),
            format!(
                "{:.1}",
                if mean.abs() > 1e-9 {
                    std / mean.abs() * 100.0
                } else {
                    0.0
                }
            ),
        ]);
    }
    println!("{table}");
    println!(
        "Low coefficients of variation confirm §A.6: repeated runs produce\n\
         approximately the same results modulo scheduling randomness."
    );
}
