//! Fig. 9 — CDFs of (a) interactivity delays and (b) task completion times
//! across the four scheduling policies, plus the §5.3.2 headline rates.

use notebookos_bench::{excerpt_trace, run_all_policies};
use notebookos_core::PolicyKind;
use notebookos_metrics::Table;

fn main() {
    let trace = excerpt_trace();
    let runs = run_all_policies(&trace);

    let mut delay = Table::new(
        "Fig 9(a) — interactivity delay CDF (seconds)",
        &["policy", "p25", "p50", "p75", "p90", "p99", "max"],
    );
    let mut tct = Table::new(
        "Fig 9(b) — task completion time CDF (seconds)",
        &["policy", "p25", "p50", "p75", "p90", "p99", "max"],
    );
    for (policy, m) in &runs {
        let mut d = m.interactivity_ms.clone();
        let mut t = m.tct_ms.clone();
        let row = |c: &mut notebookos_metrics::Cdf| {
            vec![
                format!("{:.3}", c.percentile(25.0) / 1e3),
                format!("{:.3}", c.percentile(50.0) / 1e3),
                format!("{:.3}", c.percentile(75.0) / 1e3),
                format!("{:.3}", c.percentile(90.0) / 1e3),
                format!("{:.3}", c.percentile(99.0) / 1e3),
                format!("{:.3}", c.max() / 1e3),
            ]
        };
        let mut cells = vec![policy.to_string()];
        cells.extend(row(&mut d));
        delay.row_owned(cells);
        let mut cells = vec![policy.to_string()];
        cells.extend(row(&mut t));
        tct.row_owned(cells);
    }
    println!("{delay}");
    println!("{tct}");

    let nbos = &runs
        .iter()
        .find(|(p, _)| *p == PolicyKind::NotebookOs)
        .expect("notebookos run")
        .1;
    let mut rates = Table::new(
        "§5.3.2 headline rates (paper: immediate commit 89.6 %, executor reuse 89.45 %)",
        &["metric", "value"],
    );
    rates.row_owned(vec![
        "GPUs committed immediately on request".into(),
        format!("{:.2}%", nbos.counters.immediate_commit_rate() * 100.0),
    ]);
    rates.row_owned(vec![
        "same executor reused for consecutive requests".into(),
        format!("{:.2}%", nbos.counters.executor_reuse_rate() * 100.0),
    ]);
    rates.row_owned(vec![
        "migrations".into(),
        nbos.counters.migrations.to_string(),
    ]);
    rates.row_owned(vec![
        "aborted executions".into(),
        nbos.counters.aborted.to_string(),
    ]);
    println!("{rates}");
}
