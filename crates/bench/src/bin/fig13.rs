//! Fig. 13 — GPU-hours saved by NotebookOS by avoiding cell re-execution
//! after idle session reclamations, for five reclamation intervals over the
//! 90-day trace.

use notebookos_bench::summer_trace;
use notebookos_core::fig13_sweep;
use notebookos_metrics::Table;

fn main() {
    let trace = summer_trace();
    let sweep = fig13_sweep(&trace);

    let mut table = Table::new(
        "Fig 13 — cumulative GPU-hours saved by state persistence",
        &["day", "15-min", "30-min", "60-min", "90-min", "120-min"],
    );
    for day in (0..=90).step_by(15) {
        let t = day as f64 * 86_400.0;
        let mut cells = vec![day.to_string()];
        for s in &sweep {
            cells.push(format!("{:.0}", s.saved_timeline.value_at(t)));
        }
        table.row_owned(cells);
    }
    println!("{table}");

    let mut totals = Table::new(
        "Fig 13 — totals (paper: shorter intervals reclaim more, saving more GPU-hours)",
        &["reclamation interval", "reclamations", "GPU-hours saved"],
    );
    for s in &sweep {
        totals.row_owned(vec![
            format!("{} min", s.interval_min),
            s.reclamations.to_string(),
            format!("{:.0}", s.total_gpu_hours_saved),
        ]);
    }
    println!("{totals}");
}
