//! Fig. 10 — timeline of major events (kernel creations, migrations,
//! scale-outs) during the 17.5-hour workload, with the cluster-wide
//! subscription ratio on the secondary axis.

use notebookos_bench::{excerpt_trace, run_policy};
use notebookos_core::PolicyKind;
use notebookos_metrics::Table;

fn main() {
    let trace = excerpt_trace();
    let m = run_policy(PolicyKind::NotebookOs, &trace);
    let span = trace.span_s();

    let count_in =
        |times: &[f64], lo: f64, hi: f64| times.iter().filter(|&&t| t >= lo && t < hi).count();

    let mut table = Table::new(
        "Fig 10 — events per hour and subscription ratio (NotebookOS)",
        &[
            "hour",
            "kernel creations",
            "migrations",
            "scale-outs",
            "SR at hour end",
        ],
    );
    for hour in 0..18 {
        let lo = hour as f64 * 3600.0;
        let hi = lo + 3600.0;
        table.row_owned(vec![
            hour.to_string(),
            count_in(&m.kernel_creation_times_s, lo, hi).to_string(),
            count_in(&m.migration_times_s, lo, hi).to_string(),
            count_in(&m.scale_out_times_s, lo, hi).to_string(),
            format!("{:.3}", m.subscription_ratio.value_at(hi.min(span))),
        ]);
    }
    println!("{table}");

    let mut summary = Table::new(
        "Fig 10 — totals (paper: SR spikes at kernel-creation bursts trigger scale-outs; migrations follow SR climbs)",
        &["metric", "value"],
    );
    summary.row_owned(vec![
        "kernel creations".into(),
        m.counters.kernel_creations.to_string(),
    ]);
    summary.row_owned(vec!["migrations".into(), m.counters.migrations.to_string()]);
    summary.row_owned(vec![
        "scale-out operations".into(),
        m.counters.scale_outs.to_string(),
    ]);
    summary.row_owned(vec![
        "scale-in operations".into(),
        m.counters.scale_ins.to_string(),
    ]);
    summary.row_owned(vec![
        "peak SR".into(),
        format!("{:.3}", m.subscription_ratio.max_value()),
    ]);
    println!("{summary}");
}
