//! `placement × elasticity` interaction sweep — the flagship sharded
//! workload (ROADMAP: "Elasticity × placement interaction study").
//!
//! Both axes are sweepable since PR 3; crossing all four placement
//! policies with all three elasticity policies over the heterogeneous
//! and diurnal stress scenarios shows which pairings compound — and at
//! full scale (72 runs of 17.5-hour simulations) it is exactly the sweep
//! that needs to be split across machines, killed, resumed, and merged:
//!
//! ```text
//! # One process:
//! cargo run --release -p notebookos-bench --bin sweep_shard
//! # Two machines, then a merge with a bit-identity gate (CI does this):
//! cargo run ... --bin sweep_shard -- --smoke --shard 0/2 --out shard-0.json
//! cargo run ... --bin sweep_shard -- --smoke --shard 1/2 --out shard-1.json
//! cargo run ... --bin sweep_shard -- --smoke --merge shard-0.json shard-1.json --out merged.json
//! # Kill it, then pick up where it died:
//! cargo run ... --bin sweep_shard -- --smoke --resume partial.json
//! ```
//!
//! Flags: `[--smoke] [--workers N] [--shard I/M] [--out FILE]
//! [--resume FILE] [--fsync] [--merge FILES...]`. Merged or
//! resumed-to-completion reports render the interaction tables; partial
//! (sharded) runs just persist their cells. `--fsync` hardens the
//! `--resume` checkpoint journal to per-record durability and prints the
//! measured throughput cost of doing so.

use notebookos_bench::sweep_cli::SweepCli;
use notebookos_bench::{elastic_config, elastic_smoke_config, smoke_heterogeneous};
use notebookos_core::sweep::{Scenario, SweepSpec};
use notebookos_core::{ElasticityKind, PlacementKind, PolicyKind};
use notebookos_metrics::Table;

const USAGE: &str =
    "sweep_shard [--smoke] [--workers N] [--shard I/M] [--out FILE] [--resume FILE] \
     [--fsync] [--merge FILES...]";

/// The interaction matrix: NotebookOS under every placement × elasticity
/// pairing, on the scenarios where the pairings differ most.
fn interaction_spec(smoke: bool) -> SweepSpec {
    let scenarios = if smoke {
        vec![smoke_heterogeneous()]
    } else {
        vec![Scenario::heterogeneous_hosts(), Scenario::diurnal()]
    };
    // Two smoke seeds so the matrix spans two (scenario, seed) trace
    // blocks — the CI shard matrix partitions it with `--shard-by block`
    // and both shards must receive work.
    let seeds: Vec<u64> = if smoke {
        vec![1, 2]
    } else {
        (0..3).map(|i| 2026 + i).collect()
    };
    SweepSpec::new()
        .policies(vec![PolicyKind::NotebookOs])
        .all_placements()
        .all_elasticities()
        .seeds(seeds)
        .scenarios(scenarios)
        .configure(if smoke {
            elastic_smoke_config
        } else {
            elastic_config
        })
}

fn main() {
    let cli = SweepCli::parse(std::env::args().skip(1), USAGE).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });
    let spec = interaction_spec(cli.smoke);
    eprintln!(
        "sweep_shard: {} interaction cells ({} scenarios x {} placements x {} elasticities x {} seeds)",
        spec.total_jobs(),
        spec.scenarios.len(),
        PlacementKind::ALL.len(),
        ElasticityKind::ALL.len(),
        spec.seeds.len()
    );
    let report = cli.execute(&spec, "sweep_shard").unwrap_or_else(|err| {
        eprintln!("sweep_shard: {err}");
        std::process::exit(1);
    });

    // Partial shards persist their cells and stop; tables and invariant
    // checks only make sense over the full matrix.
    if !SweepCli::is_complete(&spec, &report) {
        println!(
            "sweep_shard: partial report ({} of {} cells) — merge the shards or \
             --resume to complete it",
            report.len(),
            spec.total_jobs()
        );
        return;
    }

    for scenario in &spec.scenarios {
        let mut header: Vec<String> = vec!["placement".into()];
        header.extend(
            ElasticityKind::ALL
                .iter()
                .map(|e| format!("{e} p50 (ms) / cost ($)")),
        );
        let mut table = Table::new(
            format!("NotebookOS placement x elasticity — {}", scenario.name),
            &header.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for placement in PlacementKind::ALL {
            let mut row = vec![placement.to_string()];
            for elasticity in ElasticityKind::ALL {
                let agg = report
                    .aggregate_interaction(
                        &scenario.name,
                        PolicyKind::NotebookOs,
                        placement,
                        elasticity,
                    )
                    .expect("complete report has every interaction cell");
                row.push(format!(
                    "{:.1} / {:.2}",
                    agg.interactivity_p50_ms.mean, agg.provider_cost_usd.mean
                ));
            }
            table.row_owned(row);
        }
        println!("{table}");
    }

    // Sanity the CI smoke run enforces: every cell executed work, and
    // the interaction actually varies across pairings (a sweep that
    // produced one flat surface would mean an axis is not being stamped
    // through to the platform).
    assert!(
        report
            .runs
            .iter()
            .all(|r| r.metrics.counters.executions > 0),
        "an interaction cell completed no executions"
    );
    let distinct_migration_profiles: std::collections::BTreeSet<u64> = report
        .runs
        .iter()
        .map(|r| r.metrics.counters.migrations)
        .collect();
    assert!(
        distinct_migration_profiles.len() > 1
            || report
                .runs
                .iter()
                .map(|r| r.metrics.counters.scale_outs)
                .collect::<std::collections::BTreeSet<u64>>()
                .len()
                > 1,
        "placement x elasticity surface is completely flat — axis plumbing broke"
    );
    println!(
        "sweep_shard: {} interaction cells complete (fingerprint {:#018x})",
        report.len(),
        report.fingerprint
    );
}
