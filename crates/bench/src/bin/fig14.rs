//! Fig. 14 — simulated 90-day GPU usage: (a) cluster-wide allocatable GPUs
//! per policy against Oracle and Reservation, (b) the ratio of allocatable
//! GPUs actively utilized.

use notebookos_bench::{fmt0, run_all_policies, summer_trace};
use notebookos_metrics::Table;

fn main() {
    let trace = summer_trace();
    let oracle = trace.oracle_gpu_timeline();
    let runs = run_all_policies(&trace);
    let span = trace.span_s();

    let mut alloc = Table::new(
        "Fig 14(a) — allocatable GPUs over 90 days",
        &[
            "day",
            "oracle",
            "Reservation",
            "Batch",
            "NotebookOS",
            "NbOS (LCP)",
        ],
    );
    for day in (0..=90).step_by(10) {
        let t = day as f64 * 86_400.0;
        let mut cells = vec![day.to_string(), fmt0(oracle.value_at(t))];
        for (_, m) in &runs {
            cells.push(fmt0(m.provisioned_gpus.value_at(t)));
        }
        alloc.row_owned(cells);
    }
    println!("{alloc}");

    let mut ratio = Table::new(
        "Fig 14(b) — GPU usage ratio (utilized / allocatable), time-weighted mean",
        &["policy", "mean usage ratio"],
    );
    for (policy, m) in &runs {
        let utilized = m.committed_gpus.integral(0.0, span);
        let allocatable = m.provisioned_gpus.integral(0.0, span);
        ratio.row_owned(vec![
            policy.to_string(),
            format!("{:.3}", utilized / allocatable.max(1e-9)),
        ]);
    }
    println!("{ratio}");
    println!(
        "Paper: NotebookOS uses a significantly higher fraction of available GPUs than Reservation."
    );
}
