//! Live service mode: serve wall-clock Jupyter wire traffic.
//!
//! Replays a time-compressed AdobeTrace-shaped workload against the
//! [`LiveGateway`](notebookos_core::LiveGateway) under the
//! [`RealTimeScheduler`] — real signed wire messages, real sleeps between
//! event deadlines — and reports sustained sessions, executions/sec, and
//! p50/p99 request latency. `--virtual` runs the identical loop under the
//! [`DesScheduler`] (virtual time, finishes instantly), which is also how
//! the test suite drives it.
//!
//! Usage:
//!
//! ```text
//! serve [--users N] [--duration SECS] [--hosts N] [--seed N]
//!       [--max-cell-ms N] [--out FILE] [--smoke] [--virtual]
//! ```
//!
//! `--smoke` is the CI job: a few wall-clock seconds of traffic at small
//! user count, exiting nonzero unless executions completed and the run
//! shut down cleanly.

use std::process::ExitCode;

use notebookos_bench::serve::{run_serve, ServeOpts, ServeReport};
use notebookos_des::{DesScheduler, RealTimeScheduler, SimTime};

const USAGE: &str = "serve [--users N] [--duration SECS] [--hosts N] [--seed N] \
                     [--max-cell-ms N] [--out FILE] [--smoke] [--virtual]";

struct Cli {
    opts: ServeOpts,
    smoke: bool,
    virtual_time: bool,
    out: Option<String>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: ServeOpts::new(8, SimTime::from_secs(10)),
        smoke: false,
        virtual_time: false,
        out: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} takes a value; usage: {USAGE}"))
        };
        let positive = |flag: &str, v: String| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{flag} takes a positive integer; usage: {USAGE}"))
        };
        match arg.as_str() {
            "--users" => cli.opts.users = positive("--users", value("--users")?)? as usize,
            "--duration" => {
                cli.opts.duration =
                    SimTime::from_secs(positive("--duration", value("--duration")?)?);
            }
            "--hosts" => cli.opts.hosts = positive("--hosts", value("--hosts")?)? as usize,
            "--seed" => {
                cli.opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| format!("--seed takes an integer; usage: {USAGE}"))?;
            }
            "--max-cell-ms" => {
                cli.opts.max_cell =
                    SimTime::from_millis(positive("--max-cell-ms", value("--max-cell-ms")?)?);
            }
            "--out" => cli.out = Some(value("--out")?),
            "--smoke" => {
                cli.smoke = true;
                let seed = cli.opts.seed;
                cli.opts = ServeOpts::smoke();
                cli.opts.seed = seed;
            }
            "--virtual" => cli.virtual_time = true,
            other => return Err(format!("unknown argument {other:?}; usage: {USAGE}")),
        }
    }
    Ok(cli)
}

fn write_artifact(report: &ServeReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, report.to_json().encode())
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("serve: {message}");
            return ExitCode::from(2);
        }
    };

    let label = if cli.virtual_time {
        "virtual"
    } else {
        "wall-clock"
    };
    eprintln!(
        "serve: {} users over {:.0}s ({label}), {} hosts, seed {}",
        cli.opts.users,
        cli.opts.duration.as_secs_f64(),
        cli.opts.hosts,
        cli.opts.seed,
    );

    let started = std::time::Instant::now();
    let (report, max_lateness) = if cli.virtual_time {
        let mut sched: DesScheduler<_> = DesScheduler::new();
        (run_serve(&cli.opts, &mut sched), None)
    } else {
        let mut sched: RealTimeScheduler<_> = RealTimeScheduler::new();
        let report = run_serve(&cli.opts, &mut sched);
        (report, Some(sched.max_lateness()))
    };
    let elapsed = started.elapsed().as_secs_f64();

    println!("{}", report.render());
    println!("wall-clock: {elapsed:.2}s elapsed");
    if let Some(lateness) = max_lateness {
        println!(
            "scheduler: max event lateness {:.2} ms",
            lateness.as_millis_f64()
        );
    }

    if let Some(path) = &cli.out {
        if let Err(error) = write_artifact(&report, path) {
            eprintln!("serve: writing {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("serve: report written to {path}");
    }

    if cli.smoke {
        if report.executions == 0 {
            eprintln!("serve: SMOKE FAIL — no executions completed");
            return ExitCode::FAILURE;
        }
        if report.gateway.replies != report.executions {
            eprintln!(
                "serve: SMOKE FAIL — {} replies for {} executions (unclean shutdown)",
                report.gateway.replies, report.executions
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "serve: SMOKE OK — {} executions, p99 {:.1} ms",
            report.executions, report.latency_p99_ms
        );
    }
    ExitCode::SUCCESS
}
