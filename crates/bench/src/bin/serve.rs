//! Live service mode: serve wall-clock Jupyter wire traffic.
//!
//! Replays a time-compressed AdobeTrace-shaped workload against the
//! [`LiveGateway`](notebookos_core::LiveGateway) under the
//! [`RealTimeScheduler`] — real signed wire messages, real sleeps between
//! event deadlines — and reports sustained sessions, executions/sec, and
//! p50/p99 request latency. `--virtual` runs the identical loop under the
//! [`DesScheduler`] (virtual time, finishes instantly), which is also how
//! the test suite drives it.
//!
//! `--shards N` partitions sessions across N gateway shards (one OS
//! thread, scheduler, and gateway each) sharing a single placement owner
//! thread; the merged report is deterministic, and `--check-against`
//! proves it by comparing the shard-invariant fields and the full
//! latency multiset against a previous run's artifact — CI cross-checks
//! `--shards 4 --virtual` against `--shards 1` this way. `--scale-out`
//! measures the virtual-time throughput curve at 1/2/4/8 shards and
//! writes the `serve_ns_per_exec` family `perf_gate` consumes.
//!
//! `--balance` swaps the static partition for the skew-aware mode
//! (rendezvous affinity, power-of-two admission, quiescent-point work
//! stealing); `--skew zipf:THETA` makes the generated tenants Zipfian so
//! the skew defense has something to defend against. Balancing moves
//! *where* sessions run, never *what* runs, and `--check-counters`
//! proves it against a static run's artifact. With `--scale-out`,
//! `--balance` emits the static-vs-balanced comparison curve and the
//! `balanced_p99_under_skew` family gated against `BENCH_pr10.json`;
//! `--expect-occupancy-cut` exits nonzero unless balancing beats the
//! static partition's hottest-shard occupancy at 4+ shards.
//!
//! Usage:
//!
//! ```text
//! serve [--users N] [--duration SECS] [--hosts N] [--seed N]
//!       [--max-cell-ms N] [--out FILE] [--smoke] [--virtual]
//!       [--shards N] [--check-against FILE] [--check-counters FILE]
//!       [--balance] [--skew zipf:THETA]
//!       [--scale-out FILE] [--expect-speedup X] [--expect-occupancy-cut]
//! ```
//!
//! `--smoke` is the CI job: a few wall-clock seconds of traffic at small
//! user count, exiting nonzero unless executions completed and the run
//! shut down cleanly.

use std::process::ExitCode;

use notebookos_bench::balance::{run_serve_balanced, run_serve_balanced_cooperative, BalEv};
use notebookos_bench::serve::{
    run_serve, run_serve_sharded, ServeEv, ServeOpts, ServeReport, ShardedServeReport,
};
use notebookos_des::{DesScheduler, RealTimeScheduler, Scheduler, SimTime};
use notebookos_jupyter::Json;

const USAGE: &str = "serve [--users N] [--duration SECS] [--hosts N] [--seed N] \
                     [--max-cell-ms N] [--out FILE] [--smoke] [--virtual] \
                     [--shards N] [--check-against FILE] [--check-counters FILE] \
                     [--balance] [--skew zipf:THETA] \
                     [--scale-out FILE] [--expect-speedup X] [--expect-occupancy-cut]";

struct Cli {
    opts: ServeOpts,
    smoke: bool,
    virtual_time: bool,
    out: Option<String>,
    shards: usize,
    balance: bool,
    check_against: Option<String>,
    check_counters: Option<String>,
    scale_out: Option<String>,
    expect_speedup: Option<f64>,
    expect_occupancy_cut: bool,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: ServeOpts::new(8, SimTime::from_secs(10)),
        smoke: false,
        virtual_time: false,
        out: None,
        shards: 1,
        balance: false,
        check_against: None,
        check_counters: None,
        scale_out: None,
        expect_speedup: None,
        expect_occupancy_cut: false,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} takes a value; usage: {USAGE}"))
        };
        let positive = |flag: &str, v: String| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{flag} takes a positive integer; usage: {USAGE}"))
        };
        match arg.as_str() {
            "--users" => cli.opts.users = positive("--users", value("--users")?)? as usize,
            "--duration" => {
                cli.opts.duration =
                    SimTime::from_secs(positive("--duration", value("--duration")?)?);
            }
            "--hosts" => cli.opts.hosts = positive("--hosts", value("--hosts")?)? as usize,
            "--seed" => {
                cli.opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| format!("--seed takes an integer; usage: {USAGE}"))?;
            }
            "--max-cell-ms" => {
                cli.opts.max_cell =
                    SimTime::from_millis(positive("--max-cell-ms", value("--max-cell-ms")?)?);
            }
            "--out" => cli.out = Some(value("--out")?),
            "--smoke" => {
                cli.smoke = true;
                let seed = cli.opts.seed;
                let skew = cli.opts.skew;
                cli.opts = ServeOpts::smoke();
                cli.opts.seed = seed;
                cli.opts.skew = skew;
            }
            "--virtual" => cli.virtual_time = true,
            "--shards" => cli.shards = positive("--shards", value("--shards")?)? as usize,
            "--balance" => cli.balance = true,
            "--skew" => {
                let spec = value("--skew")?;
                let theta = spec
                    .strip_prefix("zipf:")
                    .and_then(|t| t.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t > 0.0)
                    .ok_or_else(|| {
                        format!("--skew takes `zipf:THETA` with THETA > 0; usage: {USAGE}")
                    })?;
                cli.opts.skew = Some(theta);
            }
            "--check-against" => cli.check_against = Some(value("--check-against")?),
            "--check-counters" => cli.check_counters = Some(value("--check-counters")?),
            "--scale-out" => cli.scale_out = Some(value("--scale-out")?),
            "--expect-occupancy-cut" => cli.expect_occupancy_cut = true,
            "--expect-speedup" => {
                cli.expect_speedup = Some(
                    value("--expect-speedup")?
                        .parse::<f64>()
                        .ok()
                        .filter(|x| x.is_finite() && *x >= 1.0)
                        .ok_or_else(|| {
                            format!("--expect-speedup takes a factor >= 1.0; usage: {USAGE}")
                        })?,
                );
            }
            other => return Err(format!("unknown argument {other:?}; usage: {USAGE}")),
        }
    }
    Ok(cli)
}

fn write_artifact(json: &Json, path: &str) -> std::io::Result<()> {
    std::fs::write(path, json.encode())
}

/// Compares this run's report against a previous artifact. With
/// `timing` (the `--check-against` contract between static shard
/// counts), every shard-invariant field must match, including
/// `logical_secs`, the gauge floor, and the full latency multiset. The
/// counters-only mode (`--check-counters`, the balanced-vs-static
/// contract) checks just *what happened* — balancing relocates sessions,
/// which legitimately re-times events and gauge samples but must never
/// change a counter. Returns the mismatches; empty means the contract
/// held.
fn cross_check(report: &ServeReport, prior: &Json, timing: bool) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut counters: Vec<(&str, f64)> = vec![
        ("users", report.users as f64),
        ("sessions_started", report.sessions_started as f64),
        ("sessions_ended", report.sessions_ended as f64),
        ("executions", report.executions as f64),
        ("shortfalls", report.shortfalls as f64),
        ("dropped", report.dropped as f64),
        ("wire_accepted", report.gateway.accepted as f64),
        ("wire_rejected", report.gateway.rejected as f64),
        ("wire_replies", report.gateway.replies as f64),
        ("wire_fan_out_copies", report.gateway.fan_out_copies as f64),
        ("client_sent", report.client_sent as f64),
        ("client_received", report.client_received as f64),
    ];
    if timing {
        counters.push(("logical_secs", report.logical_secs));
        counters.push(("min_viable_hosts", report.min_viable_hosts as f64));
    }
    for &(key, ours) in &counters {
        match prior.get(key).and_then(Json::as_f64) {
            Some(theirs) if theirs == ours => {}
            Some(theirs) => mismatches.push(format!("{key}: {ours} here vs {theirs} in prior")),
            None => mismatches.push(format!("{key}: missing from prior artifact")),
        }
    }
    if !timing {
        return mismatches;
    }
    let ours = report.latency.canonical_samples();
    match prior.get("latency_ms").and_then(Json::as_arr) {
        Some(theirs) => {
            let theirs: Vec<f64> = theirs.iter().filter_map(Json::as_f64).collect();
            if theirs != ours {
                let first_diff = ours
                    .iter()
                    .zip(&theirs)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| ours.len().min(theirs.len()));
                mismatches.push(format!(
                    "latency_ms: {} samples here vs {} in prior (first divergence at #{})",
                    ours.len(),
                    theirs.len(),
                    first_diff,
                ));
            }
        }
        None => mismatches.push("latency_ms: missing from prior artifact".into()),
    }
    mismatches
}

/// Virtual-time throughput curve over shard counts: wall-clock ns per
/// completed execution at 1/2/4/8 shards, plus the coordination
/// decomposition (placement channel vs merge vs per-shard wall) the
/// scaling number is read against.
fn scale_out(opts: &ServeOpts, cores: usize) -> (Json, Vec<(usize, f64)>) {
    let mut curve: Vec<(usize, f64)> = Vec::new();
    let mut family = Json::object();
    let mut decomposition: Vec<Json> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let started = std::time::Instant::now();
        let run = run_serve_sharded(opts, shards, &|_| {
            Box::new(DesScheduler::new()) as Box<dyn Scheduler<ServeEv>>
        });
        let wall = started.elapsed();
        let executions = run.report.executions.max(1);
        let ns_per_exec = wall.as_nanos() as f64 / executions as f64;
        curve.push((shards, ns_per_exec));
        family = family.with(&format!("{shards}"), ns_per_exec);
        let coord = &run.coordination;
        decomposition.push(
            Json::object()
                .with("shards", shards as u64)
                .with("wall_s", wall.as_secs_f64())
                .with("executions", run.report.executions)
                .with("serve_ns_per_exec", ns_per_exec)
                .with("placement_wait_s", coord.placement_wait().as_secs_f64())
                .with("placement_calls", coord.placement_calls())
                .with("merge_s", coord.merge.as_secs_f64())
                .with("service_busy_s", coord.service.busy.as_secs_f64())
                .with("service_wakeups", coord.service.wakeups)
                .with(
                    "service_mean_drained_per_wakeup",
                    coord.service.mean_drained_per_wakeup(),
                ),
        );
        eprintln!(
            "serve: scale-out {shards} shard(s): {:.1} ns/exec over {} executions \
             ({:.3}s wall, {:.3}s placement wait, {:.4}s merge)",
            ns_per_exec,
            run.report.executions,
            wall.as_secs_f64(),
            coord.placement_wait().as_secs_f64(),
            coord.merge.as_secs_f64(),
        );
    }
    let json = Json::object()
        .with("bench", "serve-scale-out")
        .with("cores", cores as u64)
        .with("users", opts.users as u64)
        .with("duration_s", opts.duration.as_secs_f64())
        .with("hosts", opts.hosts as u64)
        .with("serve_ns_per_exec", family)
        .with("decomposition", decomposition);
    (json, curve)
}

/// Skew-defense curve over shard counts: at 1/2/4/8 shards, run the
/// static partition and the balanced mode on the identical trace and
/// compare the hottest shard's occupancy high-water mark and the logical
/// p99. Emits the `balanced_p99_under_skew` family (p99 ms keyed by
/// shard count) that `perf_gate` checks against `BENCH_pr10.json`. The
/// balanced side uses the deterministic cooperative driver so the
/// committed numbers reproduce bit-for-bit on any machine.
///
/// Returns the artifact plus, per shard count, `(static max occupancy,
/// balanced max occupancy)` for the `--expect-occupancy-cut` check.
fn scale_out_balanced(opts: &ServeOpts, cores: usize) -> (Json, Vec<(usize, u64, u64)>) {
    let mut family = Json::object();
    let mut decomposition: Vec<Json> = Vec::new();
    let mut occupancies: Vec<(usize, u64, u64)> = Vec::new();
    eprintln!(
        "serve: {:>6} {:>14} {:>14} {:>12} {:>12} {:>7} {:>7}",
        "shards",
        "static-max-occ",
        "balance-max-occ",
        "static-p99",
        "balance-p99",
        "steals",
        "moved"
    );
    for &shards in &[1usize, 2, 4, 8] {
        let started = std::time::Instant::now();
        let fixed = run_serve_sharded(opts, shards, &|_| {
            Box::new(DesScheduler::new()) as Box<dyn Scheduler<ServeEv>>
        });
        let fixed_wall = started.elapsed();
        let started = std::time::Instant::now();
        let balanced = run_serve_balanced_cooperative(opts, shards, &|_| {
            Box::new(DesScheduler::new()) as Box<dyn Scheduler<BalEv>>
        });
        let balanced_wall = started.elapsed();
        let occ_fixed = fixed.coordination.max_shard_occupancy();
        let occ_balanced = balanced.coordination.max_shard_occupancy();
        occupancies.push((shards, occ_fixed, occ_balanced));
        family = family.with(&format!("{shards}"), balanced.report.latency_p99_ms);
        decomposition.push(
            Json::object()
                .with("shards", shards as u64)
                .with("executions", balanced.report.executions)
                .with("static_wall_s", fixed_wall.as_secs_f64())
                .with("balanced_wall_s", balanced_wall.as_secs_f64())
                .with("static_p99_ms", fixed.report.latency_p99_ms)
                .with("balanced_p99_ms", balanced.report.latency_p99_ms)
                .with("static_max_shard_occupancy", occ_fixed)
                .with("balanced_max_shard_occupancy", occ_balanced)
                .with("steals", balanced.coordination.steals())
                .with("sessions_moved", balanced.coordination.sessions_moved()),
        );
        eprintln!(
            "serve: {:>6} {:>14} {:>14} {:>12.1} {:>12.1} {:>7} {:>7}",
            shards,
            occ_fixed,
            occ_balanced,
            fixed.report.latency_p99_ms,
            balanced.report.latency_p99_ms,
            balanced.coordination.steals(),
            balanced.coordination.sessions_moved(),
        );
    }
    let json = Json::object()
        .with("bench", "serve-balance-scale-out")
        .with("cores", cores as u64)
        .with("users", opts.users as u64)
        .with("duration_s", opts.duration.as_secs_f64())
        .with("hosts", opts.hosts as u64)
        .with(
            "skew_theta",
            opts.skew.map_or(Json::from("uniform"), Json::from),
        )
        .with("balanced_p99_under_skew", family)
        .with("decomposition", decomposition);
    (json, occupancies)
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("serve: {message}");
            return ExitCode::from(2);
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    if let Some(path) = &cli.scale_out {
        if cli.balance {
            eprintln!(
                "serve: balance scale-out, {} users over {:.0}s virtual on {} hosts \
                 ({cores} cores, skew {})",
                cli.opts.users,
                cli.opts.duration.as_secs_f64(),
                cli.opts.hosts,
                cli.opts
                    .skew
                    .map_or("uniform".into(), |t| format!("zipf:{t}")),
            );
            let (json, occupancies) = scale_out_balanced(&cli.opts, cores);
            if let Err(error) = write_artifact(&json, path) {
                eprintln!("serve: writing {path}: {error}");
                return ExitCode::FAILURE;
            }
            eprintln!("serve: balance scale-out curve written to {path}");
            if cli.expect_occupancy_cut {
                let mut failed = false;
                for &(shards, occ_fixed, occ_balanced) in &occupancies {
                    if shards < 4 {
                        continue;
                    }
                    if occ_balanced < occ_fixed {
                        eprintln!(
                            "serve: OCCUPANCY OK — {shards} shards: balanced max \
                             {occ_balanced} < static max {occ_fixed}"
                        );
                    } else {
                        eprintln!(
                            "serve: OCCUPANCY FAIL — {shards} shards: balanced max \
                             {occ_balanced} did not beat static max {occ_fixed}"
                        );
                        failed = true;
                    }
                }
                if failed {
                    return ExitCode::FAILURE;
                }
            }
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "serve: scale-out curve, {} users over {:.0}s virtual on {} hosts ({cores} cores)",
            cli.opts.users,
            cli.opts.duration.as_secs_f64(),
            cli.opts.hosts,
        );
        let (json, curve) = scale_out(&cli.opts, cores);
        if let Err(error) = write_artifact(&json, path) {
            eprintln!("serve: writing {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("serve: scale-out curve written to {path}");
        if let Some(expect) = cli.expect_speedup {
            let ns_1 = curve.iter().find(|&&(s, _)| s == 1).map(|&(_, ns)| ns);
            let ns_4 = curve.iter().find(|&&(s, _)| s == 4).map(|&(_, ns)| ns);
            let (Some(ns_1), Some(ns_4)) = (ns_1, ns_4) else {
                eprintln!("serve: SCALE FAIL — curve missing the 1- or 4-shard point");
                return ExitCode::FAILURE;
            };
            let speedup = ns_1 / ns_4;
            if cores < 4 {
                eprintln!(
                    "serve: {speedup:.2}x at 4 shards on {cores} core(s) — \
                     --expect-speedup {expect} needs >= 4 cores, not enforced"
                );
            } else if speedup < expect {
                eprintln!(
                    "serve: SCALE FAIL — 4 shards gave {speedup:.2}x over 1 shard \
                     (expected >= {expect}x on {cores} cores)"
                );
                return ExitCode::FAILURE;
            } else {
                eprintln!("serve: SCALE OK — 4 shards gave {speedup:.2}x over 1 shard");
            }
        }
        return ExitCode::SUCCESS;
    }

    let label = if cli.virtual_time {
        "virtual"
    } else {
        "wall-clock"
    };
    eprintln!(
        "serve: {} users over {:.0}s ({label}), {} hosts, {} shard(s){}, seed {}",
        cli.opts.users,
        cli.opts.duration.as_secs_f64(),
        cli.opts.hosts,
        cli.shards,
        if cli.balance { " balanced" } else { "" },
        cli.opts.seed,
    );

    let started = std::time::Instant::now();
    let mut max_lateness = None;
    let mut sharded: Option<ShardedServeReport> = None;
    let report = if cli.balance {
        let virtual_time = cli.virtual_time;
        let run = run_serve_balanced(&cli.opts, cli.shards, &move |_| {
            if virtual_time {
                Box::new(DesScheduler::new()) as Box<dyn Scheduler<BalEv>>
            } else {
                Box::new(RealTimeScheduler::new()) as Box<dyn Scheduler<BalEv>>
            }
        });
        let report = run.report.clone();
        sharded = Some(run);
        report
    } else if cli.shards > 1 {
        let virtual_time = cli.virtual_time;
        let run = run_serve_sharded(&cli.opts, cli.shards, &move |_| {
            if virtual_time {
                Box::new(DesScheduler::new()) as Box<dyn Scheduler<ServeEv>>
            } else {
                Box::new(RealTimeScheduler::new()) as Box<dyn Scheduler<ServeEv>>
            }
        });
        let report = run.report.clone();
        sharded = Some(run);
        report
    } else if cli.virtual_time {
        let mut sched: DesScheduler<_> = DesScheduler::new();
        run_serve(&cli.opts, &mut sched)
    } else {
        let mut sched: RealTimeScheduler<_> = RealTimeScheduler::new();
        let report = run_serve(&cli.opts, &mut sched);
        max_lateness = Some(sched.max_lateness());
        report
    };
    let elapsed = started.elapsed().as_secs_f64();

    println!("{}", report.render());
    println!("wall-clock: {elapsed:.2}s elapsed");
    if let Some(lateness) = max_lateness {
        println!(
            "scheduler: max event lateness {:.2} ms",
            lateness.as_millis_f64()
        );
    }
    if let Some(run) = &sharded {
        let coord = &run.coordination;
        println!(
            "shards: {} over {} core(s); placement wait {:.3}s across {} calls, \
             merge {:.4}s",
            run.shards,
            cores,
            coord.placement_wait().as_secs_f64(),
            coord.placement_calls(),
            coord.merge.as_secs_f64(),
        );
        if cli.balance {
            println!(
                "balance: max shard occupancy {}, {} steals moved {} session(s)",
                coord.max_shard_occupancy(),
                coord.steals(),
                coord.sessions_moved(),
            );
        }
    }

    if let Some(path) = &cli.out {
        let json = match &sharded {
            Some(run) => run.to_json(),
            None => report.to_json(),
        };
        if let Err(error) = write_artifact(&json, path) {
            eprintln!("serve: writing {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("serve: report written to {path}");
    }

    for (path, timing) in cli
        .check_against
        .iter()
        .map(|p| (p, true))
        .chain(cli.check_counters.iter().map(|p| (p, false)))
    {
        let prior = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| format!("{e:?}")))
        {
            Ok(json) => json,
            Err(error) => {
                eprintln!("serve: reading {path}: {error}");
                return ExitCode::from(2);
            }
        };
        let mismatches = cross_check(&report, &prior, timing);
        if mismatches.is_empty() {
            if timing {
                eprintln!(
                    "serve: CROSS-CHECK OK — {} latencies and all invariant counters \
                     match {path}",
                    report.latency.len()
                );
            } else {
                eprintln!("serve: COUNTER-CHECK OK — all counters match {path}");
            }
        } else {
            for mismatch in &mismatches {
                eprintln!("serve: CROSS-CHECK MISMATCH — {mismatch}");
            }
            eprintln!(
                "serve: CROSS-CHECK FAIL — {} field(s) diverge from {path}; {}",
                mismatches.len(),
                if timing {
                    "sharded and single-shard runs must serve identical latencies"
                } else {
                    "balanced and static runs must serve identical counters"
                },
            );
            return ExitCode::FAILURE;
        }
    }

    if cli.smoke {
        if report.executions == 0 {
            eprintln!("serve: SMOKE FAIL — no executions completed");
            return ExitCode::FAILURE;
        }
        if report.gateway.replies != report.executions {
            eprintln!(
                "serve: SMOKE FAIL — {} replies for {} executions (unclean shutdown)",
                report.gateway.replies, report.executions
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "serve: SMOKE OK — {} executions, p99 {:.1} ms",
            report.executions, report.latency_p99_ms
        );
    }
    ExitCode::SUCCESS
}
