//! A text analogue of the NotebookOS administrative dashboard (§5.1.2,
//! artifact \[77\]): replays the 17.5-hour evaluation workload through the
//! sweep engine and prints the full run report.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin dashboard [policy] [seed]
//! ```
//!
//! `policy` ∈ {reservation, batch, notebookos, lcp, all} (default:
//! notebookos). `all` runs the whole comparison set in parallel on the
//! worker pool and appends a cross-policy summary.

use notebookos_bench::EVAL_SEED;
use notebookos_core::sweep::{self, Scenario, SweepJob};
use notebookos_core::{PlatformConfig, PolicyKind, RunMetrics};
use notebookos_metrics::Table;

fn parse_policies(arg: Option<&str>) -> Vec<PolicyKind> {
    match arg.unwrap_or("notebookos") {
        "reservation" => vec![PolicyKind::Reservation],
        "batch" => vec![PolicyKind::Batch],
        "lcp" => vec![PolicyKind::NotebookOsLcp],
        "all" => PolicyKind::ALL.to_vec(),
        _ => vec![PolicyKind::NotebookOs],
    }
}

fn print_run(policy: PolicyKind, m: &RunMetrics, span: f64) {
    let mut events = Table::new(format!("{policy} — scheduler events"), &["event", "count"]);
    let c = m.counters;
    events.row_owned(vec![
        "executions completed".into(),
        c.executions.to_string(),
    ]);
    events.row_owned(vec!["executions aborted".into(), c.aborted.to_string()]);
    events.row_owned(vec![
        "kernel creations".into(),
        c.kernel_creations.to_string(),
    ]);
    events.row_owned(vec!["migrations".into(), c.migrations.to_string()]);
    events.row_owned(vec![
        "scale-outs / scale-ins".into(),
        format!("{} / {}", c.scale_outs, c.scale_ins),
    ]);
    events.row_owned(vec![
        "cold starts / warm hits".into(),
        format!("{} / {}", c.cold_starts, c.warm_hits),
    ]);
    events.row_owned(vec![
        "pre-warms discarded at scale-in".into(),
        c.prewarms_discarded.to_string(),
    ]);
    events.row_owned(vec![
        "immediate GPU commits".into(),
        format!("{:.2}%", c.immediate_commit_rate() * 100.0),
    ]);
    events.row_owned(vec![
        "executor reuse".into(),
        format!("{:.2}%", c.executor_reuse_rate() * 100.0),
    ]);
    println!("{events}");

    let mut latency = Table::new(
        format!("{policy} — latency summary (ms)"),
        &["metric", "p50", "p90", "p99", "max"],
    );
    for (name, cdf) in [
        ("interactivity", &m.interactivity_ms),
        ("TCT", &m.tct_ms),
        ("raft sync", &m.sync_ms),
    ] {
        let mut c = cdf.clone();
        if c.is_empty() {
            continue;
        }
        latency.row_owned(vec![
            name.to_string(),
            format!("{:.1}", c.percentile(50.0)),
            format!("{:.1}", c.percentile(90.0)),
            format!("{:.1}", c.percentile(99.0)),
            format!("{:.1}", c.max()),
        ]);
    }
    println!("{latency}");

    let mut resources = Table::new(
        format!("{policy} — resources & billing"),
        &["metric", "value"],
    );
    resources.row_owned(vec![
        "provisioned GPU-hours".into(),
        format!("{:.1}", m.provisioned_gpu_hours()),
    ]);
    resources.row_owned(vec![
        "reservation-equivalent GPU-hours".into(),
        format!("{:.1}", m.reserved_gpu_hours()),
    ]);
    resources.row_owned(vec![
        "GPU-hours saved vs Reservation".into(),
        format!("{:.1}", m.gpu_hours_saved_vs_reservation()),
    ]);
    resources.row_owned(vec![
        "peak provisioned GPUs".into(),
        format!("{:.0}", m.provisioned_gpus.max_value()),
    ]);
    resources.row_owned(vec![
        "mean GPU utilization".into(),
        format!(
            "{:.1}%",
            m.committed_gpus.integral(0.0, span) / m.provisioned_gpus.integral(0.0, span).max(1e-9)
                * 100.0
        ),
    ]);
    if let Some((cost, revenue)) = m.final_billing() {
        resources.row_owned(vec!["provider cost".into(), format!("${cost:.0}")]);
        resources.row_owned(vec!["revenue".into(), format!("${revenue:.0}")]);
        if revenue > 0.0 {
            resources.row_owned(vec![
                "profit margin".into(),
                format!("{:.1}%", (revenue - cost) / revenue * 100.0),
            ]);
        }
    }
    println!("{resources}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let policies = parse_policies(args.get(1).map(String::as_str));
    let seed: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(EVAL_SEED);

    // Generate the workload once and share it across every policy's job.
    let trace = std::sync::Arc::new(Scenario::excerpt().trace(seed));
    let span = trace.span_s();
    println!(
        "workload: {} sessions, {} events, {:.1} h (seed {seed})",
        trace.sessions.len(),
        trace.total_events(),
        span / 3600.0
    );

    let jobs: Vec<SweepJob> = policies
        .iter()
        .map(|&p| {
            SweepJob::new(
                p,
                seed,
                PlatformConfig::evaluation(p),
                std::sync::Arc::clone(&trace),
            )
        })
        .collect();
    let runs: Vec<(PolicyKind, RunMetrics)> = policies
        .iter()
        .copied()
        .zip(sweep::run_jobs(jobs, 0))
        .collect();

    for (policy, metrics) in &runs {
        print_run(*policy, metrics, span);
    }

    if runs.len() > 1 {
        let mut summary = Table::new(
            "cross-policy summary",
            &["policy", "delay p50 (ms)", "GPU-hours", "executions"],
        );
        for (policy, metrics) in &runs {
            let mut delay = metrics.interactivity_ms.clone();
            summary.row_owned(vec![
                policy.to_string(),
                if delay.is_empty() {
                    "-".into()
                } else {
                    format!("{:.1}", delay.percentile(50.0))
                },
                format!("{:.1}", metrics.provisioned_gpu_hours()),
                metrics.counters.executions.to_string(),
            ]);
        }
        println!("{summary}");
    }
}
