//! A text analogue of the NotebookOS administrative dashboard (§5.1.2,
//! artifact [77]): runs the 17.5-hour evaluation workload under one policy
//! and prints the full run report.
//!
//! ```text
//! cargo run --release -p notebookos-bench --bin dashboard [policy] [seed]
//! ```
//!
//! `policy` ∈ {reservation, batch, notebookos, lcp} (default: notebookos).

use notebookos_bench::{excerpt_trace, EVAL_SEED};
use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_metrics::Table;
use notebookos_trace::{generate, SyntheticConfig};

fn parse_policy(arg: Option<&str>) -> PolicyKind {
    match arg.unwrap_or("notebookos") {
        "reservation" => PolicyKind::Reservation,
        "batch" => PolicyKind::Batch,
        "lcp" => PolicyKind::NotebookOsLcp,
        _ => PolicyKind::NotebookOs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let policy = parse_policy(args.get(1).map(String::as_str));
    let seed: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(EVAL_SEED);

    let trace = if seed == EVAL_SEED {
        excerpt_trace()
    } else {
        generate(&SyntheticConfig::excerpt_17_5h(), seed)
    };
    let span = trace.span_s();
    println!(
        "workload: {} sessions, {} events, {:.1} h (seed {seed})",
        trace.sessions.len(),
        trace.total_events(),
        span / 3600.0
    );

    let mut config = PlatformConfig::evaluation(policy);
    config.seed = seed;
    let m = Platform::run(config, trace);

    let mut events = Table::new(format!("{policy} — scheduler events"), &["event", "count"]);
    let c = m.counters;
    events.row_owned(vec![
        "executions completed".into(),
        c.executions.to_string(),
    ]);
    events.row_owned(vec!["executions aborted".into(), c.aborted.to_string()]);
    events.row_owned(vec![
        "kernel creations".into(),
        c.kernel_creations.to_string(),
    ]);
    events.row_owned(vec!["migrations".into(), c.migrations.to_string()]);
    events.row_owned(vec![
        "scale-outs / scale-ins".into(),
        format!("{} / {}", c.scale_outs, c.scale_ins),
    ]);
    events.row_owned(vec![
        "cold starts / warm hits".into(),
        format!("{} / {}", c.cold_starts, c.warm_hits),
    ]);
    events.row_owned(vec![
        "immediate GPU commits".into(),
        format!("{:.2}%", c.immediate_commit_rate() * 100.0),
    ]);
    events.row_owned(vec![
        "executor reuse".into(),
        format!("{:.2}%", c.executor_reuse_rate() * 100.0),
    ]);
    println!("{events}");

    let mut latency = Table::new(
        format!("{policy} — latency summary (ms)"),
        &["metric", "p50", "p90", "p99", "max"],
    );
    for (name, cdf) in [
        ("interactivity", &m.interactivity_ms),
        ("TCT", &m.tct_ms),
        ("raft sync", &m.sync_ms),
    ] {
        let mut c = cdf.clone();
        if c.is_empty() {
            continue;
        }
        latency.row_owned(vec![
            name.to_string(),
            format!("{:.1}", c.percentile(50.0)),
            format!("{:.1}", c.percentile(90.0)),
            format!("{:.1}", c.percentile(99.0)),
            format!("{:.1}", c.max()),
        ]);
    }
    println!("{latency}");

    let mut resources = Table::new(
        format!("{policy} — resources & billing"),
        &["metric", "value"],
    );
    resources.row_owned(vec![
        "provisioned GPU-hours".into(),
        format!("{:.1}", m.provisioned_gpu_hours()),
    ]);
    resources.row_owned(vec![
        "reservation-equivalent GPU-hours".into(),
        format!("{:.1}", m.reserved_gpu_hours()),
    ]);
    resources.row_owned(vec![
        "GPU-hours saved vs Reservation".into(),
        format!("{:.1}", m.gpu_hours_saved_vs_reservation()),
    ]);
    resources.row_owned(vec![
        "peak provisioned GPUs".into(),
        format!("{:.0}", m.provisioned_gpus.max_value()),
    ]);
    resources.row_owned(vec![
        "mean GPU utilization".into(),
        format!(
            "{:.1}%",
            m.committed_gpus.integral(0.0, span) / m.provisioned_gpus.integral(0.0, span).max(1e-9)
                * 100.0
        ),
    ]);
    if let Some((cost, revenue)) = m.final_billing() {
        resources.row_owned(vec!["provider cost".into(), format!("${cost:.0}")]);
        resources.row_owned(vec!["revenue".into(), format!("${revenue:.0}")]);
        if revenue > 0.0 {
            resources.row_owned(vec![
                "profit margin".into(),
                format!("{:.1}%", (revenue - cost) / revenue * 100.0),
            ]);
        }
    }
    println!("{resources}");
}
