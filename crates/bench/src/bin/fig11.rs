//! Fig. 11 — CDFs of large-object read/write latency and Raft small-state
//! synchronization latency, against the workload's event IATs.

use notebookos_bench::{excerpt_trace, run_policy};
use notebookos_core::PolicyKind;
use notebookos_metrics::{Cdf, Table};

fn main() {
    let trace = excerpt_trace();
    let m = run_policy(PolicyKind::NotebookOs, &trace);

    let mut iat = trace.iat_cdf("event IATs");
    let mut table = Table::new(
        "Fig 11 — object synchronization latencies (milliseconds; log-scale in the paper)",
        &["series", "n", "p50", "p90", "p95", "p99"],
    );
    let mut push = |name: &str, cdf: &Cdf| {
        let mut c = cdf.clone();
        if c.is_empty() {
            return;
        }
        table.row_owned(vec![
            name.to_string(),
            c.len().to_string(),
            format!("{:.2}", c.percentile(50.0)),
            format!("{:.2}", c.percentile(90.0)),
            format!("{:.2}", c.percentile(95.0)),
            format!("{:.2}", c.percentile(99.0)),
        ]);
    };
    push("Writes (large objects)", &m.write_ms);
    push("Reads (large objects)", &m.read_ms);
    push("Sync (Raft small state)", &m.sync_ms);
    // IATs are recorded in seconds; present in ms for a common axis.
    table.row_owned(vec![
        "Event IATs".to_string(),
        iat.len().to_string(),
        format!("{:.0}", iat.percentile(50.0) * 1e3),
        format!("{:.0}", iat.percentile(90.0) * 1e3),
        format!("{:.0}", iat.percentile(95.0) * 1e3),
        format!("{:.0}", iat.percentile(99.0) * 1e3),
    ]);
    println!("{table}");

    println!(
        "Paper anchors: Sync p90/p95/p99 = 54.79/66.69/268.25 ms; 99% of reads <= ~3950 ms, \
         writes <= ~7070 ms; the shortest event IAT is 240000 ms, so object traffic hides \
         inside think time."
    );
    let mut read = m.read_ms.clone();
    let mut write = m.write_ms.clone();
    if !read.is_empty() && !write.is_empty() {
        let hidden = read.percentile(99.0).max(write.percentile(99.0)) < 240_000.0;
        println!(
            "Check: p99 object latency {} the minimum IAT -> overhead {} hidden from users.",
            if hidden { "is below" } else { "EXCEEDS" },
            if hidden { "is" } else { "is NOT" }
        );
    }
}
