//! CI perf regression gate.
//!
//! Compares freshly measured `perf_bench` reports (the CI job's
//! `perf-smoke-*.json`) against the committed baseline
//! (`BENCH_pr6.json`'s `after` block) and fails — nonzero exit — when
//! any ns/op family regresses by more than the tolerance at any fleet
//! size both files cover. The comparison is per fleet size, so a flat
//! curve that tilts upward at one end is caught even when the
//! small-fleet numbers hold.
//!
//! `--current` repeats: with several reports the gate takes the
//! per-cell **minimum** across runs. Sub-microsecond cells on a shared
//! runner jitter far past 25% run to run; the min of a few runs is the
//! standard estimator for the true cost and keeps the tight tolerance
//! honest instead of flaky.
//!
//! PRs that intentionally trade placement latency for something else set
//! the `perf-regression-allowed` label; the workflow skips this gate
//! when the label is present (see `.github/workflows/ci.yml` and the
//! README's "Performance" section).
//!
//! Usage: `perf_gate --current FILE [--current FILE ...] --baseline FILE [--tolerance 0.25]`

use std::process::ExitCode;

use notebookos_jupyter::Json;

/// The metric maps the gate checks (ns/op curves keyed by fleet size,
/// plus the balanced serving p99 curve keyed by shard count). Families
/// absent from either file are skipped with a note — an older baseline
/// must not fail a newer bench.
const FAMILIES: &[&str] = &[
    "placement_rank_ns_per_op",
    "placement_rank_top3_ns_per_op",
    "viable_hosts_ns_per_op",
    "best_commit_ns_per_op",
    "round_robin_worst_ns_per_op",
    "serve_ns_per_exec",
    "balanced_p99_under_skew",
];

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: reading {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: parsing {path}: {e}");
        std::process::exit(2);
    })
}

/// Pulls one ns/op family as `(fleet, ns)` pairs sorted by fleet size.
fn family(report: &Json, name: &str) -> Option<Vec<(u64, f64)>> {
    let Json::Obj(map) = report.get(name)? else {
        return None;
    };
    let mut pairs: Vec<(u64, f64)> = map
        .iter()
        .filter_map(|(k, v)| Some((k.parse().ok()?, v.as_f64()?)))
        .collect();
    pairs.sort_unstable_by_key(|&(hosts, _)| hosts);
    Some(pairs)
}

/// Per-cell minimum across several reports of one family; `None` when
/// the family is absent from every report.
fn min_family(reports: &[Json], name: &str) -> Option<Vec<(u64, f64)>> {
    let mut merged: Vec<(u64, f64)> = Vec::new();
    for report in reports {
        for (hosts, ns) in family(report, name)? {
            match merged.iter_mut().find(|(h, _)| *h == hosts) {
                Some((_, best)) => *best = best.min(ns),
                None => merged.push((hosts, ns)),
            }
        }
    }
    merged.sort_unstable_by_key(|&(hosts, _)| hosts);
    (!merged.is_empty()).then_some(merged)
}

fn main() -> ExitCode {
    let mut current_paths = Vec::new();
    let mut baseline_path = None;
    let mut tolerance = 0.25f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("perf_gate: {flag} takes a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--current" => current_paths.push(value("--current")),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("perf_gate: --tolerance takes a fraction like 0.25");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "perf_gate: unknown argument {other:?}; usage: \
                     perf_gate --current FILE [--current FILE ...] --baseline FILE \
                     [--tolerance 0.25]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let Some(baseline_path) = baseline_path else {
        eprintln!("perf_gate: --baseline is required");
        return ExitCode::from(2);
    };
    if current_paths.is_empty() {
        eprintln!("perf_gate: at least one --current is required");
        return ExitCode::from(2);
    }

    let currents: Vec<Json> = current_paths.iter().map(|p| load(p)).collect();
    let baseline_root = load(&baseline_path);
    // Committed BENCH files nest the gate numbers under "after"; a raw
    // perf_bench report keeps them at the top level. Accept both.
    let baseline = baseline_root.get("after").unwrap_or(&baseline_root);

    let mut regressions = 0u32;
    for name in FAMILIES {
        let (Some(base), Some(cur)) = (family(baseline, name), min_family(&currents, name)) else {
            eprintln!("perf_gate: {name}: absent from one side, skipped");
            continue;
        };
        for &(hosts, base_ns) in &base {
            let Some(&(_, cur_ns)) = cur.iter().find(|&&(h, _)| h == hosts) else {
                continue;
            };
            let ratio = cur_ns / base_ns;
            let verdict = if ratio > 1.0 + tolerance {
                regressions += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            // Most families are ns/op keyed by fleet size;
            // `balanced_p99_under_skew` is logical p99 ms keyed by shard
            // count. The ratio check is unit-agnostic.
            println!(
                "{name} @ {hosts}: {cur_ns:.1} vs baseline {base_ns:.1} \
                 ({ratio:.2}x) {verdict}"
            );
        }
    }
    if regressions > 0 {
        eprintln!(
            "perf_gate: {regressions} fleet-size(s) regressed more than {:.0}% — \
             failing. Apply the `perf-regression-allowed` label if intentional.",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf_gate: all families within {:.0}% of baseline",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}
