//! Fig. 12 — provider cost, revenue, and profit margin over the 90-day
//! simulation window: NotebookOS vs Reservation (§5.5.1).

use notebookos_bench::{summer_trace, EVAL_SEED};
use notebookos_core::sweep::{self, SweepJob};
use notebookos_core::{PlatformConfig, PolicyKind};
use notebookos_metrics::Table;

fn sample_at(samples: &[(f64, f64, f64)], t: f64) -> (f64, f64) {
    let mut best = (0.0, 0.0);
    for &(ts, c, r) in samples {
        if ts <= t {
            best = (c, r);
        } else {
            break;
        }
    }
    best
}

fn main() {
    let trace = std::sync::Arc::new(summer_trace());
    // Both 90-day simulations run concurrently on the sweep engine's pool.
    let jobs = [PolicyKind::Reservation, PolicyKind::NotebookOs].map(|p| {
        SweepJob::new(
            p,
            EVAL_SEED,
            PlatformConfig::evaluation(p),
            std::sync::Arc::clone(&trace),
        )
    });
    let mut results = sweep::run_jobs(jobs.to_vec(), 0).into_iter();
    let reservation = results.next().expect("reservation run");
    let nbos = results.next().expect("notebookos run");

    let mut table = Table::new(
        "Fig 12(a) — provider cost and revenue, millions of USD",
        &[
            "day",
            "Res. cost",
            "Res. revenue",
            "NbOS cost",
            "NbOS revenue",
        ],
    );
    for day in (0..=90).step_by(15) {
        let t = day as f64 * 86_400.0;
        let (rc, rr) = sample_at(&reservation.billing_samples, t);
        let (nc, nr) = sample_at(&nbos.billing_samples, t);
        table.row_owned(vec![
            day.to_string(),
            format!("{:.3}", rc / 1e6),
            format!("{:.3}", rr / 1e6),
            format!("{:.3}", nc / 1e6),
            format!("{:.3}", nr / 1e6),
        ]);
    }
    println!("{table}");

    let mut margin = Table::new(
        "Fig 12(b) — profit margin (%)",
        &["day", "Reservation", "NotebookOS"],
    );
    for day in (15..=90).step_by(15) {
        let t = day as f64 * 86_400.0;
        let (rc, rr) = sample_at(&reservation.billing_samples, t);
        let (nc, nr) = sample_at(&nbos.billing_samples, t);
        let pm = |c: f64, r: f64| if r > 0.0 { (r - c) / r * 100.0 } else { 0.0 };
        margin.row_owned(vec![
            day.to_string(),
            format!("{:.1}", pm(rc, rr)),
            format!("{:.1}", pm(nc, nr)),
        ]);
    }
    println!("{margin}");

    let (rc, _) = reservation.final_billing().expect("samples");
    let (nc, _) = nbos.final_billing().expect("samples");
    println!(
        "Provider-side cost reduction vs Reservation: {:.2}% (paper: up to 69.87%).",
        (rc - nc) / rc * 100.0
    );
}
