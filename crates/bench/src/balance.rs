//! Skew-aware balanced serving: the load-aware counterpart to the
//! static partition in [`crate::serve::run_serve_sharded`].
//!
//! The static path hashes each user onto a fixed shard, so a Zipfian
//! tenant distribution lands the hot users wherever the hash happens to
//! put them — one shard saturates while its siblings idle. Balanced mode
//! layers three skew defenses, each cheap enough to leave the
//! per-execution hot path untouched:
//!
//! 1. **Rendezvous affinity** — every user's *home* shard is the winner
//!    of highest-random-weight hashing over their numeric id
//!    ([`notebookos_core::rendezvous_shard`]), so growing the shard
//!    count moves only ~`1/(N+1)` of sessions (property-tested in
//!    `tests/serve_balance.rs`).
//! 2. **Power-of-two admission** — when a session's first event pops,
//!    the owning shard consults the lock-free
//!    [`ShardLoadBoard`] and admits the
//!    session on the less-loaded of its top-2 rendezvous candidates,
//!    forwarding the whole event bundle if the runner-up wins. The board
//!    is read at admission and steal points only — never per execution.
//! 3. **Quiescent-point work stealing** — at each gauge tick a lightly
//!    loaded shard asks the most-loaded shard (occupancy margin ≥ 2) for
//!    one *idle* session: not busy, nothing queued, no deferred end. The
//!    victim exports the gateway session state
//!    ([`LiveGateway::export_session`]) and the thief imports it, so the
//!    kernel keeps running and the execution count keeps advancing.
//!
//! Sessions move *between* executions, never during one, which keeps
//! every counter (sessions, executions, drops, wire traffic) identical
//! to the static partition — `tests/serve_balance.rs` proves counter
//! equality by property. Latencies are *not* bit-identical: migrating a
//! bundle re-times its remaining events at `max(local_now, deadline)` on
//! the receiving shard. Cross-shard clamp warp is bounded by a
//! conservative pacing gate: a shard only dispatches an event whose
//! deadline is within one gauge tick of the globally slowest shard's
//! next deadline, and the slowest shard is always eligible, so the gate
//! can never deadlock.
//!
//! Two drivers share one shard core: [`run_serve_balanced`] (one OS
//! thread per shard, mpsc message passing — what the `serve` bin runs)
//! and [`run_serve_balanced_cooperative`] (single-threaded round-robin
//! with deterministic message queues — what the steal tests drive, with
//! zero wall sleeps).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use notebookos_core::placement_service::PlacementService;
use notebookos_core::serve::{client_request, LiveGateway, SessionExport};
use notebookos_core::{rendezvous_shard, rendezvous_top2, ShardLoadBoard};
use notebookos_des::{Scheduler, SimTime};
use notebookos_jupyter::{KernelResourceSpec, MsgIdGen, WireEndpoint};

use crate::serve::{
    compressed_trace, gauge_probe_spec, merge_reports, owner_of, shard_key_of_user,
    CoordinationStats, OccupancyMeter, ServeEv, ServeOpts, ServeReport, ShardCoordination,
    ShardedServeReport, UserState,
};

/// A thief only asks for work when the victim is ahead by at least this
/// much occupancy — stealing across a margin of one would thrash.
const STEAL_MARGIN: u64 = 2;

/// Events of a balanced shard's scheduler. Trace events live in per-user
/// session bundles; the scheduler only carries *cursors* into them, so
/// a bundle can migrate shards without unpicking a scheduler queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalEv {
    /// Dispatch the head event of `user`'s bundle. Stale generations
    /// (the bundle migrated away since this cursor was scheduled) are
    /// no-ops.
    Next {
        /// The bundle's user.
        user: usize,
        /// Cursor generation at scheduling time.
        gen: u64,
    },
    /// A fanned-out execution reaches its completion deadline.
    ExecDone {
        /// The user whose cell completes.
        user: usize,
        /// The request's message id.
        msg_id: String,
    },
    /// Periodic gauge sample; also the steal decision point.
    Tick,
}

/// A user's remaining trace events, in dispatch order (stable-sorted by
/// deadline, preserving the generator's push order on ties — exactly the
/// order the static path's `(time, seq)` queue dispatches them).
#[derive(Debug)]
struct SessionBundle {
    events: VecDeque<(SimTime, ServeEv)>,
    /// Pinned bundles (forwarded at admission, or stolen) skip the
    /// power-of-two admission check — the anti-ping-pong rule.
    pinned: bool,
}

/// A session migrating between shards: its remaining events, plus the
/// live gateway state when the session already started.
#[derive(Debug)]
struct BundleXfer {
    user: usize,
    bundle: SessionBundle,
    session: Option<SessionExport>,
}

/// Cross-shard messages.
#[derive(Debug)]
enum ShardMsg {
    /// An admission forward: install this bundle and run it here.
    Bundle(BundleXfer),
    /// `thief` asks for one idle session.
    StealRequest { thief: usize },
    /// The victim's answer; `None` means nothing idle to give.
    StealReply(Option<BundleXfer>),
}

/// What one scheduler step did.
enum Step {
    /// Dispatched an event.
    Event,
    /// Next event lies beyond the pacing horizon; try again after peers
    /// advance.
    Gated,
    /// Scheduler empty.
    Idle,
}

/// One balanced gateway shard: the same per-shard state as the static
/// loop (gateway, wire, scheduler, latency accumulator) plus the bundle
/// table and steal bookkeeping. Both drivers own one of these per shard
/// and differ only in how messages move.
struct BalancedShard<'a> {
    me: usize,
    shards: usize,
    opts: &'a ServeOpts,
    specs: &'a [KernelResourceSpec],
    gateway: LiveGateway,
    client: WireEndpoint,
    sched: Box<dyn Scheduler<BalEv>>,
    users: Vec<UserState>,
    ids: MsgIdGen,
    in_flight: HashMap<String, (usize, SimTime)>,
    bundles: HashMap<usize, SessionBundle>,
    /// Per-user cursor generation; bumped whenever a bundle migrates so
    /// cursors scheduled for the old residency dispatch as no-ops.
    gens: Vec<u64>,
    meter: OccupancyMeter,
    report: ServeReport,
    board: Arc<ShardLoadBoard>,
    remaining: Arc<AtomicU64>,
    steal_pending: bool,
    steals: u64,
    moved_in: u64,
    moved_out: u64,
    outbox: Vec<(usize, ShardMsg)>,
}

impl<'a> BalancedShard<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: usize,
        shards: usize,
        opts: &'a ServeOpts,
        specs: &'a [KernelResourceSpec],
        gateway: LiveGateway,
        client: WireEndpoint,
        sched: Box<dyn Scheduler<BalEv>>,
        board: Arc<ShardLoadBoard>,
        remaining: Arc<AtomicU64>,
    ) -> Self {
        BalancedShard {
            me,
            shards,
            opts,
            specs,
            gateway,
            client,
            sched,
            users: (0..opts.users).map(|_| UserState::default()).collect(),
            ids: MsgIdGen::new("cell"),
            in_flight: HashMap::new(),
            bundles: HashMap::new(),
            gens: vec![0; opts.users],
            meter: OccupancyMeter::default(),
            report: ServeReport::empty(0),
            board,
            remaining,
            steal_pending: false,
            steals: 0,
            moved_in: 0,
            moved_out: 0,
            outbox: Vec::new(),
        }
    }

    /// Occupancy changes go to the local meter and the shared board in
    /// one step, so admission and steal decisions elsewhere see them.
    fn occ_add(&mut self, delta: i64) {
        self.meter.add(delta);
        self.board.set(self.me, self.meter.current);
    }

    /// Installs a bundle and schedules its cursor. Deadlines in the past
    /// of this shard's clock dispatch now — migration warps an event's
    /// local time forward, never backward.
    fn install_bundle(&mut self, user: usize, bundle: SessionBundle) {
        let head = bundle.events.front().expect("bundles are never empty").0;
        self.gens[user] += 1;
        let gen = self.gens[user];
        self.bundles.insert(user, bundle);
        self.sched
            .schedule(head.max(self.sched.now()), BalEv::Next { user, gen });
    }

    /// One scheduler step under the pacing gate: publish our next
    /// deadline on the intent board, and only dispatch if it is within
    /// one gauge tick of the globally slowest shard's intent. The
    /// slowest shard sees `intent == min`, so it is always eligible and
    /// the gate cannot deadlock. Once the trace is fully consumed the
    /// gate lifts and the shard free-runs its drain.
    fn step(&mut self, intents: &ShardLoadBoard) -> Step {
        let Some(head) = self.sched.peek_deadline() else {
            intents.set(self.me, u64::MAX);
            return Step::Idle;
        };
        let head_us = head.as_micros();
        intents.set(self.me, head_us);
        if self.remaining.load(Ordering::Relaxed) > 0 {
            let min = intents
                .snapshot()
                .into_iter()
                .min()
                .expect("intent board is never empty");
            if head_us > min.saturating_add(self.opts.tick.as_micros()) {
                return Step::Gated;
            }
        }
        let (now, event) = self.sched.pop_next().expect("peeked deadline");
        self.handle(now, event);
        Step::Event
    }

    fn handle(&mut self, now: SimTime, event: BalEv) {
        match event {
            BalEv::Next { user, gen } => self.on_next(now, user, gen),
            BalEv::ExecDone { user, msg_id } => self.on_exec_done(now, user, &msg_id),
            BalEv::Tick => self.on_tick(now),
        }
        self.report.logical_secs = self.report.logical_secs.max(now.as_secs_f64());
    }

    fn on_next(&mut self, now: SimTime, user: usize, gen: u64) {
        if self.gens[user] != gen {
            return; // The bundle migrated; its new residency has a cursor.
        }
        let bundle = self.bundles.get(&user).expect("live cursor has a bundle");
        // Admission: an unpinned bundle's first event is its
        // SessionStart — the one point where the session may still be
        // placed elsewhere. Power-of-two: admit on the less-loaded of
        // the top-2 rendezvous candidates (ties keep affinity).
        if !bundle.pinned {
            if let Some((_, ServeEv::SessionStart(_))) = bundle.events.front() {
                let (best, second) = rendezvous_top2(shard_key_of_user(user), self.shards);
                let target = if self.board.occupancy(second) < self.board.occupancy(best) {
                    second
                } else {
                    best
                };
                if target != self.me {
                    let mut bundle = self.bundles.remove(&user).expect("checked above");
                    bundle.pinned = true;
                    self.gens[user] += 1;
                    self.outbox.push((
                        target,
                        ShardMsg::Bundle(BundleXfer {
                            user,
                            bundle,
                            session: None,
                        }),
                    ));
                    return;
                }
            }
        }
        self.consume(now, user);
    }

    /// Consumes the head event of `user`'s bundle: reschedule the cursor
    /// first (so an equal-deadline `ExecDone` scheduled by this event
    /// sorts after it, exactly like the static queue's seq order), then
    /// apply the event.
    fn consume(&mut self, now: SimTime, user: usize) {
        let bundle = self.bundles.get_mut(&user).expect("cursor target");
        let (_, event) = bundle.events.pop_front().expect("non-empty bundle");
        match bundle.events.front() {
            Some(&(deadline, _)) => {
                let gen = self.gens[user];
                self.sched
                    .schedule(deadline.max(now), BalEv::Next { user, gen });
            }
            None => {
                self.bundles.remove(&user);
            }
        }
        self.remaining.fetch_sub(1, Ordering::Relaxed);
        self.apply(now, event);
    }

    /// The static loop's trace-event arms, verbatim — same gateway
    /// calls, same counter updates, same queue-not-overlap rule.
    fn apply(&mut self, now: SimTime, event: ServeEv) {
        match event {
            ServeEv::SessionStart(user) => {
                self.report.users += 1;
                let session_id = format!("user-{user}");
                match self
                    .gateway
                    .start_session(&session_id, self.specs[user], now)
                {
                    Ok(info) => {
                        self.users[user].kernel_id = info.kernel_id;
                        self.users[user].active = true;
                        self.report.sessions_started += 1;
                        self.report.peak_sessions =
                            self.report.peak_sessions.max(self.gateway.session_count());
                        self.occ_add(1);
                    }
                    Err(_) => self.report.shortfalls += 1,
                }
            }
            ServeEv::SessionEnd(user) => {
                let state = &mut self.users[user];
                if !state.active {
                    return;
                }
                if state.busy || !state.queued.is_empty() {
                    state.end_requested = true;
                } else {
                    state.active = false;
                    self.gateway.end_session(&format!("user-{user}"));
                    self.report.sessions_ended += 1;
                    self.occ_add(-1);
                }
            }
            ServeEv::Submit { user, duration } => {
                if !self.users[user].active {
                    self.report.dropped += 1;
                } else if self.users[user].busy {
                    self.users[user].queued.push_back(duration);
                    self.occ_add(1);
                } else {
                    self.occ_add(1);
                    self.submit(user, duration, now);
                }
            }
            ServeEv::ExecDone { .. } | ServeEv::ProgressTick => {
                unreachable!("bundles hold only session/submit trace events")
            }
        }
    }

    /// Sends one cell over the wire and schedules its completion
    /// deadline — the balanced twin of the static `submit_cell`. The
    /// caller has already metered the execution; a gateway drop
    /// un-meters it here.
    fn submit(&mut self, user: usize, duration: SimTime, now: SimTime) {
        let msg_id = self.ids.next_id();
        let session_id = format!("user-{user}");
        let request = client_request(
            &msg_id,
            &session_id,
            &self.users[user].kernel_id,
            "model.fit()",
            duration,
            now,
        );
        self.client.send(&[], &request);
        self.in_flight.insert(msg_id.clone(), (user, now));
        self.users[user].busy = true;
        let accepted = self.gateway.pump(now);
        let mut ours = false;
        for execution in accepted {
            self.sched.schedule_in(
                execution.duration,
                BalEv::ExecDone {
                    user,
                    msg_id: execution.msg_id.clone(),
                },
            );
            ours |= execution.msg_id == msg_id;
        }
        if !ours {
            self.in_flight.remove(&msg_id);
            self.users[user].busy = false;
            self.report.dropped += 1;
            self.occ_add(-1);
        }
    }

    fn on_exec_done(&mut self, now: SimTime, user: usize, msg_id: &str) {
        self.gateway.finish_execution(msg_id, now);
        let (replies, bad) = self.client.drain();
        self.report.dropped += bad as u64;
        for (_, reply) in replies {
            let Some(parent) = reply.parent.as_ref() else {
                continue;
            };
            let Some((owner, submitted)) = self.in_flight.remove(&parent.msg_id) else {
                continue;
            };
            self.report.executions += 1;
            self.report
                .latency
                .record(now.saturating_sub(submitted).as_millis_f64());
            self.users[owner].busy = false;
            self.occ_add(-1);
        }
        if !self.users[user].busy {
            if let Some(duration) = self.users[user].queued.pop_front() {
                // Already metered when it queued; `submit` un-meters it
                // if the gateway drops it.
                self.submit(user, duration, now);
            } else if self.users[user].end_requested {
                self.users[user].active = false;
                self.gateway.end_session(&format!("user-{user}"));
                self.report.sessions_ended += 1;
                self.occ_add(-1);
            }
        }
    }

    /// Gauge tick: sample the meters, then decide whether to steal.
    /// Steal requests are issued here (not when the scheduler drains)
    /// because tick chains keep every shard's queue non-empty until the
    /// window ends — the signal for "this shard is light" is occupancy,
    /// not queue emptiness.
    fn on_tick(&mut self, now: SimTime) {
        self.report.gauge_samples += 1;
        self.report.min_viable_hosts = self
            .report
            .min_viable_hosts
            .min(self.gateway.viable_count(gauge_probe_spec()));
        self.report.peak_sessions = self.report.peak_sessions.max(self.gateway.session_count());
        self.meter.sample(now);
        self.board.set(self.me, self.meter.current);
        if !self.steal_pending && self.shards > 1 && self.remaining.load(Ordering::Relaxed) > 0 {
            if let Some((victim, occupancy)) = self.board.most_loaded_excluding(self.me) {
                if occupancy >= self.meter.current + STEAL_MARGIN {
                    self.steal_pending = true;
                    self.outbox
                        .push((victim, ShardMsg::StealRequest { thief: self.me }));
                }
            }
        }
        if now + self.opts.tick <= self.opts.duration {
            self.sched.schedule_in(self.opts.tick, BalEv::Tick);
        }
    }

    fn handle_msg(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Bundle(xfer) => self.adopt(xfer),
            ShardMsg::StealRequest { thief } => self.on_steal_request(thief),
            ShardMsg::StealReply(None) => self.steal_pending = false,
            ShardMsg::StealReply(Some(xfer)) => {
                self.steal_pending = false;
                self.steals += 1;
                self.moved_in += 1;
                self.adopt(xfer);
            }
        }
    }

    /// Installs an incoming bundle, taking over the session's lifecycle
    /// when it is already live (the victim exported without shutting the
    /// kernel down — both gateways share the placement backend, so the
    /// kernel's resources stay owned throughout).
    fn adopt(&mut self, xfer: BundleXfer) {
        if let Some(export) = xfer.session {
            self.users[xfer.user].kernel_id = export.session.kernel_id.clone();
            self.users[xfer.user].active = true;
            self.gateway.import_session(export);
            self.occ_add(1);
        }
        self.install_bundle(xfer.user, xfer.bundle);
    }

    /// The victim half of a steal: hand over the idle session with the
    /// most remaining events (ties toward the lowest user id, so the
    /// cooperative driver is deterministic). Idle means quiescent — not
    /// executing, nothing queued, no deferred end — so no in-flight
    /// message or reply can dangle across the migration.
    fn on_steal_request(&mut self, thief: usize) {
        let candidate = self
            .bundles
            .iter()
            .filter(|&(&user, bundle)| {
                let state = &self.users[user];
                !bundle.events.is_empty()
                    && !state.busy
                    && state.queued.is_empty()
                    && !state.end_requested
            })
            .map(|(&user, bundle)| (user, bundle.events.len()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(user, _)| user);
        let reply = candidate.map(|user| {
            let mut bundle = self.bundles.remove(&user).expect("candidate exists");
            bundle.pinned = true;
            self.gens[user] += 1;
            let session = if self.users[user].active {
                let export = self
                    .gateway
                    .export_session(&format!("user-{user}"))
                    .expect("idle session exports cleanly");
                self.users[user] = UserState::default();
                self.occ_add(-1);
                Some(export)
            } else {
                None
            };
            self.moved_out += 1;
            BundleXfer {
                user,
                bundle,
                session,
            }
        });
        self.outbox.push((thief, ShardMsg::StealReply(reply)));
    }

    fn into_result(mut self, wall: Duration) -> (ServeReport, ShardCoordination) {
        self.report.finish();
        self.report.gateway = self.gateway.stats();
        self.report.client_sent = self.client.sent();
        self.report.client_received = self.client.received();
        let (placement_wait, placement_calls) = self.gateway.coordination_wait();
        let coordination = ShardCoordination {
            shard: self.me,
            sessions: self.report.users + self.moved_in as usize,
            placement_wait,
            placement_calls,
            wall,
            max_occupancy: self.meter.max,
            occupancy: self.meter.timeline,
            steals: self.steals,
            moved_in: self.moved_in,
            moved_out: self.moved_out,
        };
        (self.report, coordination)
    }
}

/// Splits the compressed trace into per-user bundles placed at each
/// user's rendezvous home shard, and counts the total trace events (the
/// global termination counter). Within a bundle, events are
/// stable-sorted by deadline, preserving generator push order on ties —
/// the exact dispatch order of the static path's `(time, seq)` queue.
fn partition_bundles(
    events: Vec<(SimTime, ServeEv)>,
    users: usize,
    shards: usize,
) -> (Vec<Vec<(usize, SessionBundle)>>, u64) {
    let total = events.len() as u64;
    let mut per_user: Vec<Vec<(SimTime, ServeEv)>> = vec![Vec::new(); users];
    for (deadline, event) in events {
        per_user[owner_of(&event)].push((deadline, event));
    }
    let mut homes: Vec<Vec<(usize, SessionBundle)>> = (0..shards).map(|_| Vec::new()).collect();
    for (user, mut events) in per_user.into_iter().enumerate() {
        if events.is_empty() {
            continue;
        }
        events.sort_by_key(|&(deadline, _)| deadline);
        let home = rendezvous_shard(shard_key_of_user(user), shards);
        homes[home].push((
            user,
            SessionBundle {
                events: events.into(),
                pinned: false,
            },
        ));
    }
    (homes, total)
}

/// Sends everything a shard queued for its peers. Bundles and stolen
/// sessions carry unconsumed trace events, so their receiver cannot have
/// exited (shards exit only once the global event counter hits zero);
/// pure control messages tolerate a peer that drained and left.
fn flush(core: &mut BalancedShard<'_>, senders: &[Option<Sender<ShardMsg>>]) {
    for (target, msg) in core.outbox.drain(..) {
        let sender = senders[target].as_ref().expect("no messages to self");
        match &msg {
            ShardMsg::Bundle(_) | ShardMsg::StealReply(Some(_)) => sender
                .send(msg)
                .expect("peer holds unconsumed events, so it is still running"),
            ShardMsg::StealRequest { .. } | ShardMsg::StealReply(None) => {
                let _ = sender.send(msg);
            }
        }
    }
}

/// One shard's thread loop: deliver messages, step the scheduler under
/// the pacing gate, and exit once every trace event everywhere has been
/// consumed and the local queue has drained.
fn shard_loop(
    core: &mut BalancedShard<'_>,
    rx: &Receiver<ShardMsg>,
    senders: &[Option<Sender<ShardMsg>>],
    intents: &ShardLoadBoard,
) {
    loop {
        while let Ok(msg) = rx.try_recv() {
            core.handle_msg(msg);
        }
        flush(core, senders);
        match core.step(intents) {
            Step::Event => flush(core, senders),
            Step::Gated => {
                flush(core, senders);
                std::thread::yield_now();
            }
            Step::Idle => {
                flush(core, senders);
                if core.remaining.load(Ordering::Relaxed) == 0 {
                    break;
                }
                // Events remain elsewhere: wait briefly for a bundle or
                // steal reply. Short timeout, not a blocking recv — the
                // wake-up signal for "all done" is the counter, not a
                // message.
                match rx.recv_timeout(Duration::from_micros(200)) {
                    Ok(msg) => core.handle_msg(msg),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            }
        }
    }
}

/// Shared tail of both drivers: merge per-shard reports and assemble the
/// coordination decomposition.
fn assemble(
    shards: usize,
    results: Vec<(ServeReport, ShardCoordination)>,
    wall: Duration,
    service: PlacementService,
) -> ShardedServeReport {
    let service_stats = service.join();
    let merge_start = Instant::now();
    let (per_shard, coord): (Vec<ServeReport>, Vec<ShardCoordination>) =
        results.into_iter().unzip();
    let report = merge_reports(&per_shard);
    let merge = merge_start.elapsed();
    ShardedServeReport {
        shards,
        report,
        per_shard,
        coordination: CoordinationStats {
            wall,
            merge,
            shards: coord,
            service: service_stats,
        },
    }
}

/// Runs the balanced serving loop across `shards` gateway shards, one OS
/// thread each — the skew-aware counterpart of
/// [`run_serve_sharded`](crate::serve::run_serve_sharded).
///
/// Counters (sessions, executions, drops, wire traffic) are identical to
/// the static partition for the same [`ServeOpts`]; the latency
/// distribution and occupancy telemetry reflect the balanced placement.
/// Steal and migration counts land in the per-shard
/// [`ShardCoordination`] entries.
pub fn run_serve_balanced(
    opts: &ServeOpts,
    shards: usize,
    make_sched: &(dyn Fn(usize) -> Box<dyn Scheduler<BalEv>> + Sync),
) -> ShardedServeReport {
    assert!(shards > 0, "at least one shard");
    let compressed = compressed_trace(opts);
    let (mut homes, total) = partition_bundles(compressed.events, opts.users, shards);
    let service = PlacementService::spawn(
        opts.hosts,
        notebookos_cluster::ResourceBundle::p3_16xlarge(),
        opts.replication_factor,
    );
    let board = Arc::new(ShardLoadBoard::new(shards));
    let intents = Arc::new(ShardLoadBoard::new(shards));
    let remaining = Arc::new(AtomicU64::new(total));
    let specs = &compressed.specs;

    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = channel::<ShardMsg>();
        txs.push(tx);
        rxs.push(rx);
    }

    let start = Instant::now();
    let results: Vec<(ServeReport, ShardCoordination)> = std::thread::scope(|scope| {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                let initial = std::mem::take(&mut homes[shard]);
                let senders: Vec<Option<Sender<ShardMsg>>> = txs
                    .iter()
                    .enumerate()
                    .map(|(peer, tx)| (peer != shard).then(|| tx.clone()))
                    .collect();
                let backend = service.client();
                let board = Arc::clone(&board);
                let intents = Arc::clone(&intents);
                let remaining = Arc::clone(&remaining);
                scope.spawn(move || {
                    let shard_start = Instant::now();
                    let (gateway, wire) =
                        LiveGateway::with_backend(Box::new(backend), opts.replication_factor);
                    let mut core = BalancedShard::new(
                        shard,
                        shards,
                        opts,
                        specs,
                        gateway,
                        wire,
                        make_sched(shard),
                        board,
                        remaining,
                    );
                    for (user, bundle) in initial {
                        core.install_bundle(user, bundle);
                    }
                    core.sched.schedule(SimTime::ZERO, BalEv::Tick);
                    shard_loop(&mut core, &rx, &senders, &intents);
                    core.into_result(shard_start.elapsed())
                })
            })
            .collect();
        // The spawner's senders must drop before join, or no receiver
        // ever disconnects.
        drop(txs);
        handles
            .into_iter()
            .map(|handle| handle.join().expect("balanced shard thread panicked"))
            .collect()
    });
    let wall = start.elapsed();
    assemble(shards, results, wall, service)
}

/// Single-threaded, fully deterministic balanced driver: shards run
/// round-robin (one dispatched event per shard per round) with plain
/// message queues instead of channels, under the same pacing gate. Used
/// by the steal tests — identical inputs give identical steals, moves,
/// and counters, with zero wall sleeps under a [`notebookos_des::DesScheduler`].
pub fn run_serve_balanced_cooperative(
    opts: &ServeOpts,
    shards: usize,
    make_sched: &dyn Fn(usize) -> Box<dyn Scheduler<BalEv>>,
) -> ShardedServeReport {
    assert!(shards > 0, "at least one shard");
    let compressed = compressed_trace(opts);
    let (homes, total) = partition_bundles(compressed.events, opts.users, shards);
    let service = PlacementService::spawn(
        opts.hosts,
        notebookos_cluster::ResourceBundle::p3_16xlarge(),
        opts.replication_factor,
    );
    let board = Arc::new(ShardLoadBoard::new(shards));
    let intents = ShardLoadBoard::new(shards);
    let remaining = Arc::new(AtomicU64::new(total));
    let specs = &compressed.specs;

    let start = Instant::now();
    let mut cores: Vec<BalancedShard<'_>> = homes
        .into_iter()
        .enumerate()
        .map(|(shard, initial)| {
            let (gateway, wire) =
                LiveGateway::with_backend(Box::new(service.client()), opts.replication_factor);
            let mut core = BalancedShard::new(
                shard,
                shards,
                opts,
                specs,
                gateway,
                wire,
                make_sched(shard),
                Arc::clone(&board),
                Arc::clone(&remaining),
            );
            for (user, bundle) in initial {
                core.install_bundle(user, bundle);
            }
            core.sched.schedule(SimTime::ZERO, BalEv::Tick);
            core
        })
        .collect();

    let mut queues: Vec<VecDeque<ShardMsg>> = (0..shards).map(|_| VecDeque::new()).collect();
    let mut stalled = 0u32;
    loop {
        let mut progressed = false;
        for shard in 0..shards {
            while let Some(msg) = queues[shard].pop_front() {
                cores[shard].handle_msg(msg);
                progressed = true;
            }
            if matches!(cores[shard].step(&intents), Step::Event) {
                progressed = true;
            }
            for (target, msg) in cores[shard].outbox.drain(..) {
                queues[target].push_back(msg);
            }
        }
        if progressed {
            stalled = 0;
        } else {
            if remaining.load(Ordering::Relaxed) == 0 {
                break;
            }
            stalled += 1;
            assert!(
                stalled < 10_000,
                "cooperative balanced driver stalled with {} events unconsumed",
                remaining.load(Ordering::Relaxed)
            );
        }
    }
    let wall = start.elapsed();
    let results: Vec<(ServeReport, ShardCoordination)> = cores
        .into_iter()
        .map(|core| core.into_result(wall))
        .collect();
    assemble(shards, results, wall, service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::run_serve_sharded;
    use notebookos_des::DesScheduler;

    fn counters(report: &ServeReport) -> [u64; 12] {
        [
            report.users as u64,
            report.sessions_started,
            report.sessions_ended,
            report.executions,
            report.shortfalls,
            report.dropped,
            report.gateway.accepted,
            report.gateway.rejected,
            report.gateway.replies,
            report.gateway.fan_out_copies,
            report.client_sent,
            report.client_received,
        ]
    }

    #[test]
    fn balanced_smoke_matches_static_counters() {
        let opts = ServeOpts::smoke();
        let balanced = run_serve_balanced(&opts, 2, &|_| Box::new(DesScheduler::new()));
        let fixed = run_serve_sharded(&opts, 2, &|_| Box::new(DesScheduler::new()));
        assert!(balanced.report.executions > 0);
        assert_eq!(counters(&balanced.report), counters(&fixed.report));
        assert_eq!(
            balanced.report.gateway.replies, balanced.report.executions,
            "clean shutdown: one merged reply per completed execution"
        );
    }

    #[test]
    fn cooperative_driver_is_deterministic() {
        let mut opts = ServeOpts::smoke();
        opts.users = 12;
        opts.skew = Some(1.3);
        let a = run_serve_balanced_cooperative(&opts, 3, &|_| Box::new(DesScheduler::new()));
        let b = run_serve_balanced_cooperative(&opts, 3, &|_| Box::new(DesScheduler::new()));
        assert_eq!(a.report, b.report);
        assert_eq!(
            a.coordination.steals(),
            b.coordination.steals(),
            "same inputs, same steals"
        );
        assert_eq!(
            a.coordination.sessions_moved(),
            b.coordination.sessions_moved()
        );
    }

    #[test]
    fn one_balanced_shard_matches_static_counters_exactly() {
        let opts = ServeOpts::smoke();
        let balanced = run_serve_balanced_cooperative(&opts, 1, &|_| Box::new(DesScheduler::new()));
        let fixed = run_serve_sharded(&opts, 1, &|_| Box::new(DesScheduler::new()));
        assert_eq!(counters(&balanced.report), counters(&fixed.report));
        assert_eq!(balanced.coordination.steals(), 0);
        assert_eq!(balanced.coordination.sessions_moved(), 0);
    }
}
