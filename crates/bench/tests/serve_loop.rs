//! Integration tests for the live serve loop, driven entirely in
//! virtual time.
//!
//! `run_serve` takes `&mut dyn Scheduler<ServeEv>`, so the exact loop
//! the `serve` binary runs on the wall clock runs here under a
//! [`DesScheduler`] (instant) and a [`RealTimeScheduler`] whose clock is
//! hand-advanced (also instant) — no test ever sleeps. The two paths
//! must produce the same traffic, which is the whole point of putting
//! the clock behind the trait.

use notebookos_bench::serve::{run_serve, ServeOpts};
use notebookos_des::{DesScheduler, ManualClock, RealTimeScheduler, Scheduler, SimTime};

fn opts() -> ServeOpts {
    let mut opts = ServeOpts::new(12, SimTime::from_secs(20));
    opts.hosts = 8;
    opts
}

#[test]
fn serve_loop_sustains_traffic_and_shuts_down_cleanly_under_des() {
    let mut sched = DesScheduler::new();
    let report = run_serve(&opts(), &mut sched);

    assert_eq!(report.users, 12);
    assert!(report.sessions_started > 0, "sessions launched");
    assert!(report.executions > 0, "cells executed end to end");
    assert!(report.execs_per_sec > 0.0);
    // Every execution produced a merged reply that crossed the wire
    // back to the client, and every client message was verified.
    assert_eq!(report.gateway.replies, report.executions);
    assert_eq!(report.client_received, report.executions);
    assert_eq!(report.gateway.rejected, 0, "well-formed traffic only");
    // Latency percentiles are ordered and bounded by the cell cap plus
    // queueing (a generous sanity ceiling, not a perf gate).
    assert!(report.latency_p50_ms > 0.0);
    assert!(report.latency_p50_ms <= report.latency_p99_ms);
    // The viability gauge sampled a live fleet on every tick.
    assert!(report.gauge_samples > 0);
    assert!(report.min_viable_hosts > 0);
    // Clean shutdown: the tick chain stops at the configured duration
    // and the queue drains to empty — nothing is left pending.
    assert_eq!(sched.pending(), 0, "event queue drained");
    assert!(report.logical_secs <= 20.0 + 1.0);
}

#[test]
fn serve_loop_is_identical_under_des_and_manual_clock_realtime() {
    let mut des = DesScheduler::new();
    let des_report = run_serve(&opts(), &mut des);

    let mut live = RealTimeScheduler::with_clock(Box::new(ManualClock::new()));
    let live_report = run_serve(&opts(), &mut live);

    // Same schedule, same logical timestamps, same wire traffic: the
    // report — counters, latency percentiles, gauge samples — is
    // bit-identical across the two scheduler implementations.
    assert_eq!(des_report, live_report);
    assert_eq!(
        live.max_lateness(),
        SimTime::ZERO,
        "a manual clock sleeps exactly to each deadline"
    );
}

#[test]
fn serve_loop_is_deterministic_across_runs() {
    let mut a = DesScheduler::new();
    let mut b = DesScheduler::new();
    assert_eq!(run_serve(&opts(), &mut a), run_serve(&opts(), &mut b));
}
