//! Criterion benches for the platform simulation: full-policy runs over a
//! compact workload, and the placement hot path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use notebookos_cluster::{Cluster, ResourceBundle, ResourceRequest};
use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_trace::{generate, SyntheticConfig};

fn bench_policy_runs(c: &mut Criterion) {
    let trace = generate(&SyntheticConfig::smoke(), 99);
    let mut group = c.benchmark_group("platform");
    group.sample_size(10);
    for policy in PolicyKind::ALL {
        group.bench_function(format!("smoke_{policy}"), |b| {
            b.iter_batched(
                || (PlatformConfig::evaluation(policy), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform");
    group.bench_function("subscription_candidates_128_hosts", |b| {
        let mut cluster = Cluster::with_hosts(128, ResourceBundle::p3_16xlarge());
        // Pre-load with uneven subscriptions.
        for i in 0..128 {
            for _ in 0..(i % 7) {
                cluster
                    .host_mut(i as u64)
                    .expect("host")
                    .subscribe(&ResourceRequest::one_gpu());
            }
        }
        let req = ResourceRequest::one_gpu();
        b.iter(|| cluster.subscription_candidates(&req, 3, 1.0));
    });
    group.finish();
}

criterion_group!(benches, bench_policy_runs, bench_placement);
criterion_main!(benches);
