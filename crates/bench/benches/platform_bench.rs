//! Criterion benches for the platform simulation: full-policy runs over a
//! compact workload, the placement hot path at several fleet sizes, and
//! end-to-end event throughput. The committed `BENCH_pr5.json` records
//! the before/after numbers of the hot-path optimization and
//! `BENCH_pr6.json` the scan-vs-indexed placement curve up to 100k
//! hosts; `perf_bench` (the bin) produces the same measurements without
//! criterion for CI's gated perf-smoke job.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use notebookos_bench::loaded_cluster;
use notebookos_bench::serve::{run_serve_sharded, ServeEv, ServeOpts};
use notebookos_cluster::{RankScratch, ResourceRequest, Viability};
use notebookos_core::policy::{LeastLoaded, PlacementContext, PlacementPolicy};
use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_des::{DesScheduler, Scheduler, SimTime};
use notebookos_trace::{generate, SyntheticConfig};

fn bench_policy_runs(c: &mut Criterion) {
    let trace = generate(&SyntheticConfig::smoke(), 99);
    let mut group = c.benchmark_group("platform");
    group.sample_size(10);
    for policy in PolicyKind::ALL {
        group.bench_function(format!("smoke_{policy}"), |b| {
            b.iter_batched(
                || (PlatformConfig::evaluation(policy), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The placement decision at several fleet sizes: the scratch-buffer
/// ranking the platform's kernel-creation path uses (allocation-free in
/// steady state), the legacy allocating form, and the raw viability
/// screen — so a regression in any layer of the fast path shows up here.
fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    let req = ResourceRequest::one_gpu();
    for hosts in [16usize, 64, 256, 1024] {
        let cluster = loaded_cluster(hosts);
        let ctx = PlacementContext {
            cluster: &cluster,
            request: &req,
            replication_factor: 3,
        };
        group.bench_function(format!("rank_into_{hosts}_hosts"), |b| {
            let mut policy = LeastLoaded::default();
            let mut out = Vec::new();
            b.iter(|| {
                policy.rank_into(&ctx, &mut out);
                assert_eq!(out.len(), hosts);
            });
        });
        group.bench_function(format!("rank_alloc_{hosts}_hosts"), |b| {
            let mut policy = LeastLoaded::default();
            b.iter(|| policy.rank(&ctx));
        });
        group.bench_function(format!("viable_hosts_into_{hosts}_hosts"), |b| {
            let mut viable = Viability::default();
            b.iter(|| cluster.viable_hosts_into(&req, 3, 1.0, &mut viable));
        });
        group.bench_function(format!("subscription_candidates_into_{hosts}_hosts"), |b| {
            let mut scratch = RankScratch::default();
            let mut out = Vec::new();
            b.iter(|| cluster.subscription_candidates_into(&req, 3, 1.0, &mut scratch, &mut out));
        });
    }
    group.finish();
}

/// The indexed placement queries at fleet sizes up to 100k hosts — the
/// curve `BENCH_pr6.json` commits. The scan benches above stop at 1024
/// because O(n) work per op makes criterion runs slow; the indexed ops
/// are near-flat so the big fleets cost nothing extra per iteration.
fn bench_indexed_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_indexed");
    let req = ResourceRequest::one_gpu();
    for hosts in [256usize, 1024, 10_000, 100_000] {
        let cluster = loaded_cluster(hosts);
        let ctx = PlacementContext {
            cluster: &cluster,
            request: &req,
            replication_factor: 3,
        };
        group.bench_function(format!("rank_top3_{hosts}_hosts"), |b| {
            let mut policy = LeastLoaded::default();
            let mut out = Vec::new();
            // First query pays the one-time index build for the
            // host_mut-built fixture; keep it out of the samples.
            policy.rank_top_into(&ctx, 3, &mut out);
            b.iter(|| {
                let total = policy.rank_top_into(&ctx, 3, &mut out);
                assert!(total >= out.len());
            });
        });
        group.bench_function(format!("best_commit_{hosts}_hosts"), |b| {
            cluster.best_commit_host(&req);
            b.iter(|| cluster.best_commit_host(&req));
        });
    }
    group.finish();
}

/// End-to-end event throughput on a pinned 256-host fleet: per-event
/// cluster work (placement, commit/release, gauge refreshes) dominates,
/// so this is the number the incremental host index moves.
fn bench_events_per_sec(c: &mut Criterion) {
    let workload = SyntheticConfig {
        sessions: 400,
        span_s: 4.0 * 3600.0,
        ..SyntheticConfig::excerpt_17_5h()
    };
    let trace = generate(&workload, 99);
    let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
    config.initial_hosts = 256;
    config.autoscale.min_hosts = 256;
    let mut group = c.benchmark_group("platform");
    group.sample_size(10);
    // Report the event count once so ns/iter converts to events/sec.
    let world = Platform::run_for_inspection(config.clone(), trace.clone());
    eprintln!(
        "[events_per_sec] fleet-256 dispatches {} events per run",
        world.events_processed()
    );
    group.bench_function("fleet256_events", |b| {
        b.iter_batched(
            || (config.clone(), trace.clone()),
            |(config, trace)| Platform::run(config, trace),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The sharded serving loop under virtual time at 1/2/4 shards — the
/// criterion twin of `serve --scale-out` (which produces the committed
/// `BENCH_pr8.json` curve). Virtual time means the whole run is pure
/// event processing, so ns/iter across shard counts exposes the
/// coordination overhead (placement channel + merge) directly.
fn bench_sharded_serve(c: &mut Criterion) {
    let mut opts = ServeOpts::new(16, SimTime::from_secs(10));
    opts.hosts = 8;
    let mut group = c.benchmark_group("serve_sharded");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_function(format!("virtual_{shards}_shards"), |b| {
            b.iter(|| {
                let run = run_serve_sharded(&opts, shards, &|_| {
                    Box::new(DesScheduler::new()) as Box<dyn Scheduler<ServeEv>>
                });
                assert!(run.report.executions > 0);
                run
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_runs,
    bench_placement,
    bench_indexed_placement,
    bench_events_per_sec,
    bench_sharded_serve
);
criterion_main!(benches);
