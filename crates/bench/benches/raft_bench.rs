//! Criterion benches for the Raft substrate: leader election and commit
//! throughput on the deterministic network harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use notebookos_raft::harness::Network;

fn bench_leader_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft");
    group.sample_size(20);
    group.bench_function("elect_leader_3_nodes", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                Network::<u64>::new(3, seed)
            },
            |mut net| {
                net.run_until_leader();
                net
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_commit_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft");
    group.sample_size(20);
    group.bench_function("commit_100_entries_3_nodes", |b| {
        let mut seed = 100u64;
        b.iter_batched(
            || {
                seed += 1;
                let mut net = Network::<u64>::new(3, seed);
                let leader = net.run_until_leader();
                (net, leader)
            },
            |(mut net, leader)| {
                for i in 0..100u64 {
                    net.propose(leader, i).expect("leader accepts");
                }
                let last = net.node(leader).log().last_index();
                assert!(net.run_until_applied_everywhere(last, 60_000_000));
                net
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_leader_election, bench_commit_throughput);
criterion_main!(benches);
