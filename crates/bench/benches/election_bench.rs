//! Criterion benches for the executor-election protocol (§3.2.2): the real
//! Raft-backed protocol harness against the calibrated round model used in
//! the platform simulation. The comparison validates the DESIGN.md
//! substitution: both paths produce elections completing in virtual
//! milliseconds, with the harness additionally measuring wall-clock cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use notebookos_core::{Designation, ElectionModel, KernelProtocolHarness, Proposal};
use notebookos_des::SimRng;

fn bench_protocol_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("election");
    group.sample_size(20);
    group.bench_function("real_raft_single_lead", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                KernelProtocolHarness::new(seed)
            },
            |mut h| {
                let result = h.run_election(&[Proposal::Lead, Proposal::Yield, Proposal::Yield]);
                assert_eq!(result.winner, Some(0));
                h
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("real_raft_contested", |b| {
        let mut seed = 1000u64;
        b.iter_batched(
            || {
                seed += 1;
                KernelProtocolHarness::new(seed)
            },
            |mut h| {
                let result = h.run_election(&[Proposal::Lead, Proposal::Lead, Proposal::Lead]);
                assert!(result.winner.is_some());
                h
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_round_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("election");
    group.bench_function("round_model_sample", |b| {
        let model = ElectionModel::new();
        let mut rng = SimRng::seed(7);
        b.iter(|| model.designation_latency(Designation::Elected, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_harness, bench_round_model);
criterion_main!(benches);
