//! Ablation benches for the DESIGN.md design choices: replication factor,
//! SR target, pre-warm pool size, and the auto-scaler multiplier `f`.
//!
//! These are Criterion benchmarks over full (compact) platform runs; the
//! interesting output is both the wall-clock cost and the printed
//! GPU-hour/interactivity effect per configuration, emitted once per
//! configuration before measurement.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use notebookos_core::{Platform, PlatformConfig, PolicyKind};
use notebookos_trace::{generate, ArrivalPattern, SyntheticConfig, WorkloadTrace};

fn ablation_trace() -> WorkloadTrace {
    let config = SyntheticConfig {
        sessions: 30,
        span_s: 4.0 * 3600.0,
        gpu_active_fraction: 0.6,
        long_lived_fraction: 0.95,
        gpu_demand: vec![(1, 0.5), (2, 0.3), (4, 0.2)],
        arrival: ArrivalPattern::FrontLoaded,
        popularity: Default::default(),
    };
    generate(&config, 7)
}

fn report(tag: &str, config: &PlatformConfig, trace: &WorkloadTrace) {
    let mut metrics = Platform::run(config.clone(), trace.clone());
    eprintln!(
        "[ablation {tag}] provisioned={:.1} GPU-h, interactivity p50={:.1} ms, migrations={}",
        metrics.provisioned_gpu_hours(),
        metrics.interactivity_ms.percentile(50.0),
        metrics.counters.migrations,
    );
}

fn bench_replication_factor(c: &mut Criterion) {
    let trace = ablation_trace();
    let mut group = c.benchmark_group("ablation/replication_factor");
    group.sample_size(10);
    for r in [1u32, 3, 5] {
        let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
        config.replication_factor = r;
        report(&format!("R={r}"), &config, &trace);
        group.bench_function(format!("R{r}"), |b| {
            b.iter_batched(
                || (config.clone(), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_sr_target(c: &mut Criterion) {
    let trace = ablation_trace();
    let mut group = c.benchmark_group("ablation/sr_target");
    group.sample_size(10);
    for (tag, sr) in [
        ("fixed1", Some(1.0)),
        ("default1.6", Some(1.6)),
        ("off", None),
    ] {
        let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
        config.autoscale.sr_target = sr;
        report(&format!("sr_target={tag}"), &config, &trace);
        group.bench_function(tag.to_string(), |b| {
            b.iter_batched(
                || (config.clone(), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_prewarm_pool(c: &mut Criterion) {
    let trace = ablation_trace();
    let mut group = c.benchmark_group("ablation/prewarm_pool");
    group.sample_size(10);
    for pool in [0u32, 1, 6] {
        let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
        config.prewarm_min_per_host = pool;
        report(&format!("pool={pool}"), &config, &trace);
        group.bench_function(format!("pool{pool}"), |b| {
            b.iter_batched(
                || (config.clone(), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_autoscale_multiplier(c: &mut Criterion) {
    let trace = ablation_trace();
    let mut group = c.benchmark_group("ablation/autoscale_f");
    group.sample_size(10);
    for f in [1.0f64, 1.05, 1.5] {
        let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
        config.autoscale.multiplier = f;
        report(&format!("f={f}"), &config, &trace);
        group.bench_function(format!("f{f}"), |b| {
            b.iter_batched(
                || (config.clone(), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_placement_policy(c: &mut Criterion) {
    use notebookos_core::PlacementKind;
    let trace = ablation_trace();
    let mut group = c.benchmark_group("ablation/placement");
    group.sample_size(10);
    for kind in [
        PlacementKind::LeastLoaded,
        PlacementKind::RoundRobin,
        PlacementKind::BinPacking,
        PlacementKind::Random,
    ] {
        let mut config = PlatformConfig::evaluation(PolicyKind::NotebookOs);
        config.placement = kind;
        report(&format!("placement={kind}"), &config, &trace);
        group.bench_function(kind.to_string(), |b| {
            b.iter_batched(
                || (config.clone(), trace.clone()),
                |(config, trace)| Platform::run(config, trace),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_replication_factor,
    bench_sr_target,
    bench_prewarm_pool,
    bench_autoscale_multiplier,
    bench_placement_policy
);
criterion_main!(benches);
