//! Property tests for the data store and node cache.

use proptest::prelude::*;

use notebookos_datastore::{BackendKind, DataStore, NodeCache};
use notebookos_des::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never exceeds its byte capacity, and `used_bytes` always
    /// equals the sum of resident entries.
    #[test]
    fn cache_capacity_invariant(capacity in 64u64..4096, ops in proptest::collection::vec((0u8..16, 1u64..2048), 1..80)) {
        let mut cache = NodeCache::new(capacity);
        for (key, size) in ops {
            cache.put(format!("obj-{key}"), size);
            prop_assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }

    /// Recently used entries survive while the cache holds enough spare
    /// capacity for the subsequent inserts.
    #[test]
    fn cache_get_after_put_within_capacity(sizes in proptest::collection::vec(1u64..100, 1..10)) {
        let total: u64 = sizes.iter().sum();
        let mut cache = NodeCache::new(total);
        for (i, &size) in sizes.iter().enumerate() {
            cache.put(format!("obj-{i}"), size);
        }
        // Everything fits, so everything hits.
        for i in 0..sizes.len() {
            prop_assert!(cache.get(&format!("obj-{i}")), "obj-{i} evicted early");
        }
    }

    /// Store accounting: total bytes equal the sum of live objects,
    /// overwrites replace rather than accumulate.
    #[test]
    fn store_accounting(ops in proptest::collection::vec((0u8..8, 1u64..1_000_000, any::<bool>()), 1..60)) {
        let mut store = DataStore::new(BackendKind::Redis);
        let mut rng = SimRng::seed(1);
        let mut live: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for (key, size, delete) in ops {
            let key = format!("k{key}");
            if delete {
                let existed = store.delete(&key);
                prop_assert_eq!(existed, live.remove(&key).is_some());
            } else {
                store.write(key.clone(), size, &mut rng);
                live.insert(key, size);
            }
            prop_assert_eq!(store.len(), live.len());
            prop_assert_eq!(store.total_bytes(), live.values().sum::<u64>());
        }
    }

    /// Read latency is monotone-ish in object size on every backend:
    /// reading 100× more bytes takes strictly longer on average.
    #[test]
    fn latency_grows_with_size(seed in any::<u64>()) {
        for kind in [BackendKind::Redis, BackendKind::S3, BackendKind::Hdfs] {
            let mut store = DataStore::new(kind);
            let mut rng = SimRng::seed(seed);
            let (small_ptr, _) = store.write("small", 1_000_000, &mut rng);
            let (big_ptr, _) = store.write("big", 100_000_000, &mut rng);
            let small: f64 = (0..50)
                .map(|_| store.read(&small_ptr, &mut rng).unwrap().as_secs_f64())
                .sum();
            let big: f64 = (0..50)
                .map(|_| store.read(&big_ptr, &mut rng).unwrap().as_secs_f64())
                .sum();
            prop_assert!(big > small, "{kind}: big {big} <= small {small}");
        }
    }
}
