//! Distributed Data Store substrate for the NotebookOS reproduction.
//!
//! NotebookOS offloads large objects (model parameters, training datasets)
//! to a pluggable distributed store — Redis, AWS S3, or HDFS — and appends
//! only *pointers* to the Raft log (§3.2.4). This crate models those
//! backends' latency behaviour, the object-pointer scheme, and the
//! node-level cache the paper uses to limit storage/memory costs.
//!
//! # Example
//!
//! ```
//! use notebookos_datastore::{BackendKind, DataStore};
//! use notebookos_des::SimRng;
//!
//! let mut store = DataStore::new(BackendKind::S3);
//! let mut rng = SimRng::seed(7);
//! let (pointer, write_latency) = store.write("kernel-1/model", 400_000_000, &mut rng);
//! let read_latency = store.read(&pointer, &mut rng)?;
//! assert!(write_latency > read_latency || read_latency.as_secs_f64() > 0.0);
//! # Ok::<(), notebookos_datastore::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod store;

pub use backend::{BackendKind, BackendModel};
pub use cache::NodeCache;
pub use store::{DataStore, ObjectPointer, StoreError, StoreStats};
