//! Node-level object cache (§3.2.4: "NotebookOS also employs a simple
//! node-level cache to limit storage and memory costs").
//!
//! A byte-capacity LRU: hitting the cache spares a read from the remote
//! data store when a standby replica becomes the executor on a host that
//! recently held the object.

use std::collections::HashMap;

/// A byte-bounded LRU cache of object keys.
#[derive(Debug)]
pub struct NodeCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// key → (size, last-use tick)
    entries: HashMap<String, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl NodeCache {
    /// Creates a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        NodeCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks `key` up, refreshing recency. Returns whether it was cached.
    pub fn get(&mut self, key: &str) -> bool {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.1 = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts `key` with `size_bytes`, evicting LRU entries as needed.
    /// Objects larger than the whole cache are not admitted.
    pub fn put(&mut self, key: impl Into<String>, size_bytes: u64) {
        let key = key.into();
        if size_bytes > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some((old, _)) = self.entries.remove(&key) {
            self.used_bytes -= old;
        }
        while self.used_bytes + size_bytes > self.capacity_bytes {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, &(_, t))| t)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let (sz, _) = self.entries.remove(&victim).expect("victim exists");
            self.used_bytes -= sz;
        }
        self.entries.insert(key, (size_bytes, self.tick));
        self.used_bytes += size_bytes;
    }

    /// Removes a key, returning whether it was present.
    pub fn invalidate(&mut self, key: &str) -> bool {
        if let Some((sz, _)) = self.entries.remove(key) {
            self.used_bytes -= sz;
            true
        } else {
            false
        }
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]` (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = NodeCache::new(1000);
        assert!(!c.get("a"));
        c.put("a", 100);
        assert!(c.get("a"));
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = NodeCache::new(300);
        c.put("a", 100);
        c.put("b", 100);
        c.put("c", 100);
        // Touch `a` so `b` is the LRU victim.
        assert!(c.get("a"));
        c.put("d", 100);
        assert!(c.get("a"));
        assert!(!c.get("b"));
        assert!(c.get("c"));
        assert!(c.get("d"));
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn oversized_objects_not_admitted() {
        let mut c = NodeCache::new(100);
        c.put("huge", 1000);
        assert!(c.is_empty());
        assert!(!c.get("huge"));
    }

    #[test]
    fn overwrite_updates_size() {
        let mut c = NodeCache::new(1000);
        c.put("a", 100);
        c.put("a", 600);
        assert_eq!(c.used_bytes(), 600);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_frees_space() {
        let mut c = NodeCache::new(1000);
        c.put("a", 400);
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn eviction_cascades_for_large_inserts() {
        let mut c = NodeCache::new(300);
        c.put("a", 100);
        c.put("b", 100);
        c.put("c", 100);
        c.put("big", 250);
        assert!(c.get("big"));
        assert!(c.used_bytes() <= 300);
        assert_eq!(c.len(), 1);
    }
}
