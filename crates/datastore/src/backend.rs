//! Backend latency/throughput models for the pluggable Distributed Data
//! Store.
//!
//! NotebookOS supports Redis, AWS S3, and HDFS (§3.2.4). The platform only
//! observes the *latency* of large-object reads and writes (Fig. 11), so a
//! backend is modelled as a base per-operation latency plus a
//! size-proportional transfer time, with log-normal jitter on both.

use notebookos_des::{Distribution, LogNormal, SimRng, SimTime};

/// Which storage system backs the data store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// In-memory Redis cluster: lowest base latency, RAM-bound capacity.
    Redis,
    /// AWS S3: higher base latency, effectively unbounded capacity.
    S3,
    /// HDFS: middle ground.
    Hdfs,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Redis => write!(f, "redis"),
            BackendKind::S3 => write!(f, "s3"),
            BackendKind::Hdfs => write!(f, "hdfs"),
        }
    }
}

/// Latency model for one backend.
#[derive(Debug, Clone)]
pub struct BackendModel {
    kind: BackendKind,
    /// Base (size-independent) latency in seconds, jittered.
    read_base: LogNormal,
    write_base: LogNormal,
    /// Sustained throughput in bytes/second.
    read_throughput: f64,
    write_throughput: f64,
}

impl BackendModel {
    /// The calibration for `kind`.
    ///
    /// Calibrated so the evaluation workload (checkpoint objects of tens of
    /// MB to ~2 GB) reproduces Fig. 11's envelope on S3: p99 read ≈ 3.95 s
    /// and p99 write ≈ 7.07 s.
    pub fn new(kind: BackendKind) -> Self {
        match kind {
            BackendKind::Redis => BackendModel {
                kind,
                read_base: LogNormal::from_quantiles(0.5, 0.000_5, 0.99, 0.003),
                write_base: LogNormal::from_quantiles(0.5, 0.000_7, 0.99, 0.004),
                read_throughput: 1.8e9,
                write_throughput: 1.2e9,
            },
            BackendKind::S3 => BackendModel {
                kind,
                read_base: LogNormal::from_quantiles(0.5, 0.030, 0.99, 0.180),
                write_base: LogNormal::from_quantiles(0.5, 0.045, 0.99, 0.250),
                read_throughput: 5.2e8,
                write_throughput: 2.9e8,
            },
            BackendKind::Hdfs => BackendModel {
                kind,
                read_base: LogNormal::from_quantiles(0.5, 0.008, 0.99, 0.060),
                write_base: LogNormal::from_quantiles(0.5, 0.012, 0.99, 0.090),
                read_throughput: 9.0e8,
                write_throughput: 4.5e8,
            },
        }
    }

    /// The backend kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Samples the latency of reading `size_bytes`.
    pub fn read_latency(&self, size_bytes: u64, rng: &mut SimRng) -> SimTime {
        let base = self.read_base.sample(rng);
        let transfer = size_bytes as f64 / self.read_throughput;
        // Transfer jitter: ±20% log-normal-ish via a second base draw scale.
        let jitter = 0.9 + 0.2 * rng.next_f64();
        SimTime::from_secs_f64(base + transfer * jitter)
    }

    /// Samples the latency of writing `size_bytes`.
    pub fn write_latency(&self, size_bytes: u64, rng: &mut SimRng) -> SimTime {
        let base = self.write_base.sample(rng);
        let transfer = size_bytes as f64 / self.write_throughput;
        let jitter = 0.9 + 0.2 * rng.next_f64();
        SimTime::from_secs_f64(base + transfer * jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p99(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[(v.len() as f64 * 0.99) as usize]
    }

    #[test]
    fn redis_is_fastest_s3_slowest_on_base_latency() {
        let mut rng = SimRng::seed(1);
        let small = 1_000u64; // latency-dominated
        let mut med = |kind| {
            let model = BackendModel::new(kind);
            let mut v: Vec<f64> = (0..999)
                .map(|_| model.read_latency(small, &mut rng).as_secs_f64())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let redis = med(BackendKind::Redis);
        let hdfs = med(BackendKind::Hdfs);
        let s3 = med(BackendKind::S3);
        assert!(
            redis < hdfs && hdfs < s3,
            "redis {redis} hdfs {hdfs} s3 {s3}"
        );
    }

    #[test]
    fn s3_latency_envelope_matches_fig11() {
        // Checkpoint objects in the evaluation: 50 MB – 1.6 GB mix.
        let model = BackendModel::new(BackendKind::S3);
        let mut rng = SimRng::seed(2);
        let sizes: Vec<u64> = (0..4000)
            .map(|_| 50_000_000 + rng.below(1_550_000_000))
            .collect();
        let reads: Vec<f64> = sizes
            .iter()
            .map(|&s| model.read_latency(s, &mut rng).as_secs_f64())
            .collect();
        let writes: Vec<f64> = sizes
            .iter()
            .map(|&s| model.write_latency(s, &mut rng).as_secs_f64())
            .collect();
        let r99 = p99(reads);
        let w99 = p99(writes);
        // Paper: 99% of reads ≤ ~3.95 s, writes ≤ ~7.07 s.
        assert!((2.5..5.5).contains(&r99), "read p99 {r99:.2}");
        assert!((4.5..9.5).contains(&w99), "write p99 {w99:.2}");
        assert!(w99 > r99, "writes slower than reads");
    }

    #[test]
    fn latency_scales_with_size() {
        let model = BackendModel::new(BackendKind::S3);
        let mut rng = SimRng::seed(3);
        let small: f64 = (0..200)
            .map(|_| model.read_latency(1_000_000, &mut rng).as_secs_f64())
            .sum();
        let large: f64 = (0..200)
            .map(|_| model.read_latency(1_000_000_000, &mut rng).as_secs_f64())
            .sum();
        assert!(large > 10.0 * small);
    }

    #[test]
    fn display_names() {
        assert_eq!(BackendKind::Redis.to_string(), "redis");
        assert_eq!(BackendKind::S3.to_string(), "s3");
        assert_eq!(BackendKind::Hdfs.to_string(), "hdfs");
    }
}
