//! The Distributed Data Store: object metadata plus sampled operation
//! latencies.
//!
//! The store holds the *metadata* of checkpointed large objects (model
//! parameters, datasets); actual bytes never exist in the simulation. Raft
//! log entries carry [`ObjectPointer`]s that encode retrieval (§3.2.4:
//! "Pointers in the Raft log encode data retrieval").

use std::collections::HashMap;

use notebookos_des::{SimRng, SimTime};

use crate::backend::{BackendKind, BackendModel};

/// A pointer to a large object persisted in the data store — what the
/// executor replica appends to the Raft log instead of the object bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectPointer {
    /// Namespaced object key, e.g. `"kernel-42/model"`.
    pub key: String,
    /// Object size in bytes.
    pub size_bytes: u64,
    /// Which backend holds it.
    pub backend: BackendKind,
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The key does not exist.
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "object `{k}` not found"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Aggregate operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

/// The distributed data store.
#[derive(Debug, Clone)]
pub struct DataStore {
    model: BackendModel,
    objects: HashMap<String, u64>,
    stats: StoreStats,
}

impl DataStore {
    /// Creates a store on the given backend.
    pub fn new(kind: BackendKind) -> Self {
        DataStore {
            model: BackendModel::new(kind),
            objects: HashMap::new(),
            stats: StoreStats::default(),
        }
    }

    /// The backend kind.
    pub fn backend(&self) -> BackendKind {
        self.model.kind()
    }

    /// Writes (or overwrites) an object, returning the pointer and the
    /// sampled operation latency.
    pub fn write(
        &mut self,
        key: impl Into<String>,
        size_bytes: u64,
        rng: &mut SimRng,
    ) -> (ObjectPointer, SimTime) {
        let key = key.into();
        let latency = self.model.write_latency(size_bytes, rng);
        self.objects.insert(key.clone(), size_bytes);
        self.stats.writes += 1;
        self.stats.bytes_written += size_bytes;
        (
            ObjectPointer {
                key,
                size_bytes,
                backend: self.model.kind(),
            },
            latency,
        )
    }

    /// Allocation-free twin of [`DataStore::write`] for hot paths that
    /// re-checkpoint the same key every cell: no [`ObjectPointer`] is
    /// built and the key is only copied on first insertion. Samples the
    /// same latency distribution in the same RNG order as
    /// [`DataStore::write`], so the two are interchangeable without
    /// perturbing a seeded simulation.
    pub fn write_keyed(&mut self, key: &str, size_bytes: u64, rng: &mut SimRng) -> SimTime {
        let latency = self.model.write_latency(size_bytes, rng);
        match self.objects.get_mut(key) {
            Some(size) => *size = size_bytes,
            None => {
                self.objects.insert(key.to_string(), size_bytes);
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += size_bytes;
        latency
    }

    /// Reads an object by pointer, returning the sampled latency.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] for unknown keys.
    pub fn read(
        &mut self,
        pointer: &ObjectPointer,
        rng: &mut SimRng,
    ) -> Result<SimTime, StoreError> {
        self.read_keyed(&pointer.key, rng)
    }

    /// Reads an object by key — [`DataStore::read`] without constructing
    /// an [`ObjectPointer`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] for unknown keys.
    pub fn read_keyed(&mut self, key: &str, rng: &mut SimRng) -> Result<SimTime, StoreError> {
        let size = *self
            .objects
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        Ok(self.model.read_latency(size, rng))
    }

    /// Deletes an object. Returns whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.objects.remove(key).is_some()
    }

    /// Whether `key` exists.
    pub fn contains(&self, key: &str) -> bool {
        self.objects.contains_key(key)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.values().sum()
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut store = DataStore::new(BackendKind::S3);
        let mut rng = SimRng::seed(1);
        let (ptr, w) = store.write("k1/model", 100_000_000, &mut rng);
        assert!(w > SimTime::ZERO);
        assert_eq!(ptr.backend, BackendKind::S3);
        let r = store.read(&ptr, &mut rng).unwrap();
        assert!(r > SimTime::ZERO);
        assert_eq!(store.stats().writes, 1);
        assert_eq!(store.stats().reads, 1);
        assert_eq!(store.stats().bytes_written, 100_000_000);
    }

    #[test]
    fn read_missing_fails() {
        let mut store = DataStore::new(BackendKind::Redis);
        let mut rng = SimRng::seed(2);
        let ptr = ObjectPointer {
            key: "ghost".into(),
            size_bytes: 1,
            backend: BackendKind::Redis,
        };
        assert_eq!(
            store.read(&ptr, &mut rng),
            Err(StoreError::NotFound("ghost".into()))
        );
    }

    #[test]
    fn overwrite_replaces_size() {
        let mut store = DataStore::new(BackendKind::Hdfs);
        let mut rng = SimRng::seed(3);
        store.write("k", 100, &mut rng);
        store.write("k", 200, &mut rng);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 200);
    }

    #[test]
    fn delete_and_contains() {
        let mut store = DataStore::new(BackendKind::S3);
        let mut rng = SimRng::seed(4);
        store.write("k", 10, &mut rng);
        assert!(store.contains("k"));
        assert!(store.delete("k"));
        assert!(!store.delete("k"));
        assert!(store.is_empty());
    }
}
